(* The serve subsystem: wire-protocol codec roundtrips, the frame
   rejection matrix (truncated / oversized / malformed), the bounded
   admission queue, and an end-to-end loopback server checked against
   the sequential single-query oracle — including deterministic
   queue-full, deadline, and drain behavior forced through the
   [dispatch_delay_s] test hook. *)

module Protocol = Serve.Protocol
module Frame = Serve.Frame
module Admission = Serve.Admission
module Server = Serve.Server
module Meta = Serve.Meta
module Index = Lcsearch_index.Index
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Registry = Lcsearch_index.Registry

let check = Alcotest.(check int)

(* ---- message equality (floats bitwise, so a roundtrip property
   holds even for weird payloads) ---- *)

let feq x y = Int64.bits_of_float x = Int64.bits_of_float y

let msg_eq (a : Protocol.msg) (b : Protocol.msg) =
  match (a, b) with
  | Protocol.Query p, Protocol.Query q ->
      p.id = q.id && p.structure = q.structure && p.want_ids = q.want_ids
      && p.deadline_ms = q.deadline_ms && feq p.a0 q.a0
      && Array.length p.a = Array.length q.a
      && Array.for_all2 feq p.a q.a
  | Protocol.Result p, Protocol.Result q ->
      p.id = q.id && p.count = q.count && p.reads = q.reads
      && p.writes = q.writes && p.hits = q.hits
      && p.elapsed_ns = q.elapsed_ns && p.ids = q.ids
  | Protocol.Shed p, Protocol.Shed q -> p.id = q.id && p.reason = q.reason
  | Protocol.Error p, Protocol.Error q ->
      p.id = q.id && p.code = q.code && p.message = q.message
  | Protocol.Stats_query p, Protocol.Stats_query q -> p.id = q.id
  | Protocol.Stats p, Protocol.Stats q -> p.id = q.id && p.stats = q.stats
  | _ -> false

let msg_testable =
  Alcotest.testable (fun ppf m -> Protocol.pp ppf m) msg_eq

(* ---- codec roundtrip property ---- *)

(* A generator over all four constructors, honoring the wire ranges
   (u32 ids and counters). *)
let gen_msg : Protocol.msg QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let u16 () = int_bound 0xFFFF st in
  let u32 () = u16 () lor (u16 () lsl 16) in
  let str () = string_size (int_bound 12) st in
  let fl () = float st in
  match int_bound 5 st with
  | 0 ->
      Protocol.Query
        {
          id = u32 ();
          structure = str ();
          want_ids = bool st;
          deadline_ms = int_bound 100_000 st;
          a0 = fl ();
          a = Array.init (int_bound 5 st) (fun _ -> fl ());
        }
  | 1 ->
      Protocol.Result
        {
          id = u32 ();
          count = u32 ();
          reads = u32 ();
          writes = u32 ();
          hits = u32 ();
          elapsed_ns = u32 () lor (u32 () lsl 28);
          ids = Array.init (int_bound 20 st) (fun _ -> int st);
        }
  | 2 ->
      Protocol.Shed
        {
          id = u32 ();
          reason =
            (match int_bound 2 st with
            | 0 -> Protocol.Queue_full
            | 1 -> Protocol.Deadline_exceeded
            | _ -> Protocol.Draining);
        }
  | 3 ->
      Protocol.Error
        {
          id = u32 ();
          code =
            (match int_bound 2 st with
            | 0 -> Protocol.Unknown_structure
            | 1 -> Protocol.Bad_dimension
            | _ -> Protocol.Bad_request);
          message = str ();
        }
  | 4 -> Protocol.Stats_query { id = u32 () }
  | _ ->
      Protocol.Stats
        {
          id = u32 ();
          stats =
            {
              Protocol.dispatchers = 1 + int_bound 15 st;
              readers = 1 + int_bound 15 st;
              domains = 1 + int_bound 15 st;
              accepted = u32 ();
              served = u32 ();
              shed_full = u32 ();
              shed_deadline = u32 ();
              shed_drain = u32 ();
              errors = u32 ();
              batches = u32 ();
              coalesced = u32 ();
              max_batch = u32 ();
            };
        }

let arb_msg =
  QCheck.make ~print:(Format.asprintf "%a" Protocol.pp) gen_msg

let prop_roundtrip =
  QCheck.Test.make ~name:"frame encode/decode roundtrip" ~count:500 arb_msg
    (fun m ->
      match Frame.decode (Frame.encode m) with
      | Ok m' -> msg_eq m m'
      | Error e -> QCheck.Test.fail_report (Frame.read_error_to_string e))

let prop_flipped_byte =
  (* corrupting any payload byte is a typed rejection or a decode to a
     different message — never an escaping exception *)
  QCheck.Test.make ~name:"flipped payload byte never escapes"
    ~count:300
    QCheck.(pair arb_msg small_nat)
    (fun (m, off) ->
      let b = Frame.encode m in
      let off = 4 + (off mod (Bytes.length b - 4)) in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x20));
      match Frame.decode b with
      | Ok m' -> not (msg_eq m m') || true
      | Error (Frame.Malformed _) | Error (Frame.Truncated _) -> true
      | Error e -> QCheck.Test.fail_report (Frame.read_error_to_string e))

(* ---- frame rejection matrix ---- *)

let sample_msg =
  Protocol.Query
    {
      id = 7;
      structure = "h2";
      want_ids = false;
      deadline_ms = 50;
      a0 = 1.5;
      a = [| -0.25 |];
    }

let expect_error name expected = function
  | Ok m ->
      Alcotest.failf "%s: decoded %s" name (Format.asprintf "%a" Protocol.pp m)
  | Error e ->
      Alcotest.(check string) name expected (Frame.read_error_to_string e)

let test_truncation () =
  let b = Frame.encode sample_msg in
  (match Frame.decode Bytes.empty with
  | Error (Frame.Truncated { expected = 4; got = 0 }) -> ()
  | r ->
      expect_error "empty buffer" "truncated frame: expected 4 bytes, got 0" r);
  (* every strict prefix is Truncated, never a crash or a parse *)
  for keep = 0 to Bytes.length b - 1 do
    match Frame.decode (Bytes.sub b 0 keep) with
    | Error (Frame.Truncated _) -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" keep
    | Error e ->
        Alcotest.failf "prefix of %d bytes: %s" keep
          (Frame.read_error_to_string e)
  done

let test_oversized () =
  let b = Bytes.make 4 '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int (Frame.default_max_frame + 1));
  (match Frame.decode b with
  | Error (Frame.Oversized { length; max }) ->
      check "oversized length" (Frame.default_max_frame + 1) length;
      check "oversized cap" Frame.default_max_frame max
  | r -> expect_error "oversized" "(oversized)" r);
  (* a tighter per-call cap applies before any payload inspection *)
  let f = Frame.encode sample_msg in
  match Frame.decode ~max_frame:8 f with
  | Error (Frame.Oversized { max = 8; _ }) -> ()
  | r -> expect_error "tight cap" "(oversized at cap 8)" r

let test_malformed () =
  let b = Frame.encode sample_msg in
  (* trailing garbage after a complete frame *)
  (match Frame.decode (Bytes.cat b (Bytes.make 3 'x')) with
  | Error (Frame.Malformed _) -> ()
  | r -> expect_error "trailing bytes" "(malformed)" r);
  (* a wrong magic is named in the rejection, like a snapshot section *)
  let c = Bytes.copy b in
  Bytes.set c 8 'X';
  match Frame.decode c with
  | Error (Frame.Malformed _) -> ()
  | r -> expect_error "bad magic" "(malformed)" r

(* ---- incremental parser (the reactor's read accumulator path) ---- *)

let test_parse_incremental () =
  let f = Frame.encode sample_msg in
  let total = Bytes.length f in
  (* every strict prefix is Need with a target beyond what we have;
     re-parsing at the target (or anything past it) makes progress *)
  for len = 0 to total - 1 do
    match Frame.parse f len with
    | Frame.Need n ->
        Alcotest.(check bool)
          (Printf.sprintf "Need target at %d bytes grows" len)
          true
          (n > len && n <= total)
    | Frame.Parsed _ -> Alcotest.failf "parsed at %d of %d bytes" len total
    | Frame.Broken e ->
        Alcotest.failf "broken at %d bytes: %s" len
          (Frame.read_error_to_string e)
  done;
  (match Frame.parse f total with
  | Frame.Parsed (m, consumed) ->
      Alcotest.check msg_testable "complete frame parses" sample_msg m;
      check "consumed whole frame" total consumed
  | _ -> Alcotest.fail "complete frame must parse");
  (* back-to-back frames: only the first is consumed, trailing bytes
     stay buffered for the next round *)
  let second =
    Protocol.Stats_query { id = 3 }
  in
  let two = Bytes.cat f (Frame.encode second) in
  (match Frame.parse two (Bytes.length two) with
  | Frame.Parsed (m, consumed) ->
      Alcotest.check msg_testable "first of two frames" sample_msg m;
      check "consumed only the first" total consumed
  | _ -> Alcotest.fail "first of two frames must parse");
  (* the length is validated as soon as the prefix is in: four bytes of
     hostile length break the stream before any payload accumulates *)
  let b = Bytes.make 4 '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int (64 * 1024 * 1024));
  match Frame.parse b 4 with
  | Frame.Broken (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized prefix must break the stream"

(* ---- nonblocking writer (the conn outbox flush path) ---- *)

let test_write_some_partial_and_blocked () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
  @@ fun () ->
  Unix.set_nonblock a;
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let payload =
    Bytes.init (512 * 1024) (fun i -> Char.chr (((i * 31) + (i / 7)) land 0xFF))
  in
  let len = Bytes.length payload in
  let received = Buffer.create len in
  let chunk = Bytes.create 8192 in
  let drain_some () =
    match Unix.read b chunk 0 8192 with
    | 0 -> Alcotest.fail "peer closed early"
    | n -> Buffer.add_subbytes received chunk 0 n
  in
  let blocked = ref 0 and partial = ref 0 and pos = ref 0 in
  while !pos < len do
    match Frame.write_some a payload !pos (len - !pos) with
    | `Wrote n ->
        if n > 0 && n < len - !pos then incr partial;
        pos := !pos + n
    | `Blocked ->
        (* exactly what the reactor does: park until writable — here the
           peer draining the socket is what makes it writable again *)
        incr blocked;
        drain_some ()
    | `Closed -> Alcotest.fail "socketpair reported closed mid-write"
  done;
  Alcotest.(check bool) "send buffer filled at least once" true (!blocked > 0);
  Alcotest.(check bool) "partial writes happened" true (!partial > 0);
  Unix.close a;
  (let rec drain_rest () =
     match Unix.read b chunk 0 8192 with
     | 0 -> ()
     | n ->
         Buffer.add_subbytes received chunk 0 n;
         drain_rest ()
   in
   drain_rest ());
  Alcotest.(check int) "nothing lost" len (Buffer.length received);
  Alcotest.(check bool) "bytes arrive unreordered" true
    (Bytes.equal payload (Buffer.to_bytes received))

let test_write_some_closed_peer () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.close b;
  let payload = Bytes.make 4096 'x' in
  let rec poke tries =
    if tries = 0 then
      Alcotest.fail "write to a closed peer never reported `Closed"
    else
      match Frame.write_some a payload 0 4096 with
      | `Closed -> ()
      | `Wrote _ | `Blocked -> poke (tries - 1)
  in
  poke 10;
  Unix.close a

(* ---- admission queue ---- *)

let test_admission_fifo_and_full () =
  let q = Admission.create 2 in
  Alcotest.(check bool) "push 1" true (Admission.push q 1 = Admission.Accepted);
  Alcotest.(check bool) "push 2" true (Admission.push q 2 = Admission.Accepted);
  Alcotest.(check bool) "push over capacity" true
    (Admission.push q 3 = Admission.Full);
  check "length" 2 (Admission.length q);
  (match Admission.pop_batch q ~max:1 ~timeout:1. with
  | Admission.Items [ 1 ] -> ()
  | _ -> Alcotest.fail "pop max:1 must return the oldest item");
  (* the freed slot is immediately reusable, and order stays FIFO *)
  Alcotest.(check bool) "push 4" true (Admission.push q 4 = Admission.Accepted);
  (match Admission.pop_batch q ~max:10 ~timeout:1. with
  | Admission.Items [ 2; 4 ] -> ()
  | _ -> Alcotest.fail "pop must return [2; 4] in FIFO order");
  (match Admission.pop_batch q ~max:10 ~timeout:0.02 with
  | Admission.Timeout -> ()
  | _ -> Alcotest.fail "empty queue must time out");
  Admission.dispose q

let test_admission_close_and_drain () =
  let q = Admission.create 4 in
  ignore (Admission.push q "a");
  Admission.close q;
  Alcotest.(check bool) "push after close" true
    (Admission.push q "b" = Admission.Closed);
  (match Admission.pop_batch q ~max:10 ~timeout:1. with
  | Admission.Items [ "a" ] -> ()
  | _ -> Alcotest.fail "backlog must drain after close");
  (match Admission.pop_batch q ~max:10 ~timeout:1. with
  | Admission.Drained -> ()
  | _ -> Alcotest.fail "closed empty queue must report Drained");
  Admission.dispose q

(* many pushers, one popper: nothing lost, nothing duplicated, and
   each pusher's items arrive in its own order *)
let test_admission_concurrent () =
  let q = Admission.create 8 in
  let pushers = 4 and per = 200 in
  let threads =
    List.init pushers (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              let rec retry () =
                match Admission.push q (p, i) with
                | Admission.Accepted -> ()
                | Admission.Full ->
                    Thread.yield ();
                    retry ()
                | Admission.Closed -> Alcotest.fail "queue closed early"
              in
              retry ()
            done)
          ())
  in
  let seen = Array.make pushers (-1) in
  let total = ref 0 in
  while !total < pushers * per do
    match Admission.pop_batch q ~max:16 ~timeout:5. with
    | Admission.Items items ->
        List.iter
          (fun (p, i) ->
            if i <> seen.(p) + 1 then
              Alcotest.failf "pusher %d: item %d after %d" p i seen.(p);
            seen.(p) <- i;
            incr total)
          items
    | Admission.Timeout -> Alcotest.fail "popper starved"
    | Admission.Drained -> Alcotest.fail "queue closed early"
  done;
  List.iter Thread.join threads;
  check "all items delivered" (pushers * per) !total;
  Admission.dispose q

(* Many pushers AND many poppers: with several consumers racing on one
   ring, every item is still delivered exactly once and each consumer
   sees its pops in global FIFO order (contiguous runs under the lock).
   This is the safety property the sharded server leans on. *)
let test_admission_multi_consumer () =
  let q = Admission.create 16 in
  let pushers = 3 and per = 400 and consumers = 3 in
  let push_threads =
    List.init pushers (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              let rec retry () =
                match Admission.push q (p, i) with
                | Admission.Accepted -> ()
                | Admission.Full ->
                    Thread.yield ();
                    retry ()
                | Admission.Closed -> Alcotest.fail "queue closed early"
              in
              retry ()
            done)
          ())
  in
  let got = Array.make consumers [] in
  let pop_threads =
    List.init consumers (fun c ->
        Thread.create
          (fun () ->
            let rec go () =
              match Admission.pop_batch q ~max:5 ~timeout:5. with
              | Admission.Items items ->
                  got.(c) <- got.(c) @ items;
                  go ()
              | Admission.Timeout -> Alcotest.fail "consumer starved"
              | Admission.Drained -> ()
            in
            go ())
          ())
  in
  List.iter Thread.join push_threads;
  Admission.close q;
  List.iter Thread.join pop_threads;
  (* exactly-once: the union across consumers is the full pushed set *)
  let seen = Hashtbl.create (pushers * per) in
  Array.iter
    (List.iter (fun item ->
         if Hashtbl.mem seen item then
           let p, i = item in
           Alcotest.failf "item (%d,%d) delivered twice" p i
         else Hashtbl.replace seen item ()))
    got;
  check "all items delivered exactly once" (pushers * per)
    (Hashtbl.length seen);
  (* per-consumer monotonicity: within one consumer each pusher's
     items appear in that pusher's push order *)
  Array.iteri
    (fun c items ->
      let last = Array.make pushers (-1) in
      List.iter
        (fun (p, i) ->
          if i <= last.(p) then
            Alcotest.failf "consumer %d: pusher %d item %d after %d" c p i
              last.(p);
          last.(p) <- i)
        items)
    got;
  (* close semantics under concurrency: every consumer exited on
     Drained, and a late push is refused *)
  Alcotest.(check bool) "push after close" true
    (Admission.push q (0, 0) = Admission.Closed);
  Admission.dispose q

(* ---- end-to-end loopback ---- *)

let temp_dir =
  lazy
    (let d =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "lcserve_test_%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o700
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     d)

(* Build a snapshot exactly like `lcsearch build`: same meta string,
   same rng consumption, so Meta.replay_queries reproduces the build
   process's query stream. *)
let build_snapshot name ~n ~seed =
  let module M = (val Registry.find_exn name : Index.S) in
  let ops = Option.get M.snapshot in
  let dim = List.hd M.dims in
  let block_size = Index.default_params.Index.block_size in
  let rng = Workload.rng seed in
  let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n (module M : Index.S) in
  let stats = Emio.Io_stats.create () in
  let bctx = Emio.Cost_ctx.create () in
  let t =
    Emio.Cost_ctx.with_ctx bctx (fun () ->
        M.build ~params:Index.default_params ~stats ds)
  in
  let path = Filename.concat (Lazy.force temp_dir) (name ^ ".snap") in
  let meta =
    Printf.sprintf "s=%s;n=%d;b=%d;w=uniform;seed=%d;d=%d" name n block_size
      seed dim
  in
  ops.Index.save t ~path ~meta ~page_size:None;
  path

let load_resident path =
  Diskstore.File_backend.set_resident_on_reopen true;
  Fun.protect
    ~finally:(fun () -> Diskstore.File_backend.set_resident_on_reopen false)
    (fun () ->
      match Meta.load path with
      | Ok l -> l
      | Error e -> Alcotest.failf "oracle reopen of %s: %s" path e)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.;
  fd

let send fd msg =
  match Frame.write fd msg with
  | Ok () -> ()
  | Error `Closed -> Alcotest.fail "send: connection closed"
  | Error `Timeout -> Alcotest.fail "send: timeout"

let recv fd =
  match Frame.read fd with
  | Ok m -> m
  | Error e -> Alcotest.failf "recv: %s" (Frame.read_error_to_string e)

let query ?(want_ids = false) ?(deadline_ms = 0) ~id ~structure (q : Index.query)
    =
  Protocol.Query
    { id; structure; want_ids; deadline_ms; a0 = q.Index.a0; a = q.Index.a }

let with_server cfg f =
  (* serve tests must not die on a peer reset mid-write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

(* Results, costs, and ids over the wire must match the sequential
   single-query oracle bit-for-bit — the same contract `lcsearch
   loadgen --check` enforces under load. *)
let test_e2e_oracle () =
  let h2 = build_snapshot "h2" ~n:512 ~seed:11 in
  let ptree = build_snapshot "ptree" ~n:512 ~seed:12 in
  let cfg =
    { Server.default_config with port = 0; snapshots = [ h2; ptree ]; domains = 2 }
  in
  with_server cfg (fun srv ->
      Alcotest.(check (list (pair string int)))
        "serving both structures" [ ("h2", 2); ("ptree", 2) ]
        (List.sort compare (Server.structures srv));
      let fd = connect (Server.port srv) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      List.iter
        (fun (path, structure, want_ids) ->
          let oracle = load_resident path in
          let qs = Meta.replay_queries oracle ~fraction:0.05 ~count:12 in
          Array.iteri
            (fun i q ->
              let r = Query_engine.domain_reporter () in
              Emio.Reporter.clear r;
              let expected =
                if want_ids then
                  Query_engine.run_one ~reporter:r oracle.Meta.inst q
                else Query_engine.run_one oracle.Meta.inst q
              in
              let id = (1000 * i) + if want_ids then 1 else 0 in
              send fd (query ~want_ids ~id ~structure q);
              match recv fd with
              | Protocol.Result res ->
                  let label f =
                    Printf.sprintf "%s query %d: %s" structure i f
                  in
                  check (label "id") id res.id;
                  check (label "count") expected.Query_engine.result res.count;
                  check (label "reads") expected.Query_engine.reads res.reads;
                  check (label "writes") expected.Query_engine.writes res.writes;
                  check (label "hits") expected.Query_engine.hits res.hits;
                  Alcotest.(check bool) (label "elapsed sane") true
                    (res.elapsed_ns >= 0);
                  if want_ids then begin
                    let sort a = Array.sort compare a; a in
                    Alcotest.(check (array int)) (label "ids")
                      (sort (Emio.Reporter.to_array r))
                      (sort res.ids)
                  end
                  else check (label "no ids") 0 (Array.length res.ids)
              | m ->
                  Alcotest.failf "%s query %d: unexpected %s" structure i
                    (Format.asprintf "%a" Protocol.pp m))
            qs)
        [ (h2, "h2", false); (ptree, "ptree", true) ];
      let st = Server.stats srv in
      check "all requests served" 24 st.Server.served;
      check "no sheds" 0 (st.Server.shed_full + st.Server.shed_deadline);
      check "no errors" 0 st.Server.errors)

(* Invalid requests get typed Error responses and the connection
   survives; a torn stream gets one Error and a hangup. *)
let test_e2e_rejections () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:21 in
  let cfg = { Server.default_config with port = 0; snapshots = [ h2 ] } in
  with_server cfg (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      let expect_code name id code =
        match recv fd with
        | Protocol.Error e ->
            check (name ^ ": id") id e.id;
            Alcotest.(check string)
              (name ^ ": code")
              (Protocol.error_code_name code)
              (Protocol.error_code_name e.code)
        | m ->
            Alcotest.failf "%s: unexpected %s" name
              (Format.asprintf "%a" Protocol.pp m)
      in
      send fd
        (query ~id:1 ~structure:"nope" { Index.a0 = 0.; a = [| 1. |] });
      expect_code "unknown structure" 1 Protocol.Unknown_structure;
      send fd (query ~id:2 ~structure:"h2" { Index.a0 = 0.; a = [| 1.; 2. |] });
      expect_code "bad dimension" 2 Protocol.Bad_dimension;
      send fd
        (query ~id:3 ~structure:"h2" { Index.a0 = Float.nan; a = [| 1. |] });
      expect_code "non-finite" 3 Protocol.Bad_request;
      (* clients must send Query frames *)
      send fd (Protocol.Shed { id = 9; reason = Protocol.Draining });
      expect_code "non-query frame" 0 Protocol.Bad_request;
      (* the connection is still alive after every rejection above *)
      send fd (query ~id:4 ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] });
      (match recv fd with
      | Protocol.Result r -> check "live after rejections" 4 r.id
      | m ->
          Alcotest.failf "expected a result, got %s"
            (Format.asprintf "%a" Protocol.pp m));
      (* an oversized length prefix: explain, then hang up *)
      let b = Bytes.make 4 '\000' in
      Bytes.set_int32_le b 0 (Int32.of_int (64 * 1024 * 1024));
      ignore (Unix.write fd b 0 4);
      expect_code "oversized frame" 0 Protocol.Bad_request;
      match Frame.read fd with
      | Error (Frame.Closed | Frame.Truncated _) -> ()
      | Ok m ->
          Alcotest.failf "expected hangup, got %s"
            (Format.asprintf "%a" Protocol.pp m)
      | Error e -> Alcotest.failf "expected hangup, got %s"
            (Frame.read_error_to_string e))

let count_responses fd n =
  let results = ref 0 and full = ref 0 and deadline = ref 0 and drain = ref 0 in
  let ids = Hashtbl.create n in
  for _ = 1 to n do
    (match recv fd with
    | Protocol.Result r ->
        incr results;
        Hashtbl.replace ids r.id ((Hashtbl.find_opt ids r.id |> Option.value ~default:0) + 1)
    | Protocol.Shed s ->
        (match s.reason with
        | Protocol.Queue_full -> incr full
        | Protocol.Deadline_exceeded -> incr deadline
        | Protocol.Draining -> incr drain);
        Hashtbl.replace ids s.id ((Hashtbl.find_opt ids s.id |> Option.value ~default:0) + 1)
    | m ->
        Alcotest.failf "unexpected response %s" (Format.asprintf "%a" Protocol.pp m))
  done;
  Hashtbl.iter
    (fun id k -> if k <> 1 then Alcotest.failf "id %d answered %d times" id k)
    ids;
  (!results, !full, !deadline, !drain)

(* A stalled dispatcher (dispatch_delay_s) with a 1-slot queue: a
   burst must yield explicit Queue_full sheds and exactly one response
   per request — overload is never a hang. *)
let test_e2e_queue_full_shed () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:31 in
  let cfg =
    {
      Server.default_config with
      port = 0;
      snapshots = [ h2 ];
      queue_capacity = 1;
      batch_max = 1;
      default_deadline_ms = 30_000;
      dispatch_delay_s = 0.3;
    }
  in
  with_server cfg (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let n = 10 in
      for id = 1 to n do
        send fd (query ~id ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] })
      done;
      let results, full, deadline, drain = count_responses fd n in
      check "every request answered" n (results + full + deadline + drain);
      Alcotest.(check bool) "queue-full sheds happened" true (full >= n - 4);
      check "no deadline sheds" 0 deadline;
      check "no drain sheds" 0 drain;
      let st = Server.stats srv in
      check "stats: shed_full" full st.Server.shed_full;
      check "stats: served" results st.Server.served)

(* With a 1 ms deadline and a 250 ms dispatcher stall, every queued
   request expires while waiting and is shed as Deadline_exceeded at
   pop time. *)
let test_e2e_deadline_shed () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:41 in
  let cfg =
    {
      Server.default_config with
      port = 0;
      snapshots = [ h2 ];
      queue_capacity = 64;
      batch_max = 64;
      dispatch_delay_s = 0.25;
    }
  in
  with_server cfg (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let n = 5 in
      for id = 1 to n do
        send fd
          (query ~id ~deadline_ms:1 ~structure:"h2"
             { Index.a0 = 100.; a = [| 0.1 |] })
      done;
      let results, full, deadline, drain = count_responses fd n in
      check "every request answered" n (results + full + deadline + drain);
      check "all shed past deadline" n deadline;
      check "stats: shed_deadline" n (Server.stats srv).Server.shed_deadline)

(* Cross-request coalescing must be invisible in the answers: a pile
   of pipelined queries over several structures, executed as coalesced
   batches by 1, 2, or 4 dispatcher shards, demuxes to exactly the
   bit-level results the sequential single-query oracle produces —
   counts, cost words, and ids.  The dispatch stall parks the queries
   in the rings so real multi-request batches form (max_batch >= 2),
   proving the batched path actually ran.  On runtimes where shards
   clamp to one dispatcher the same contract holds with k = 1. *)
let test_e2e_coalescing_oracle () =
  let specs =
    [
      ("h2", 71, false);
      ("h3", 72, false);
      ("cert", 73, false);
      ("ptree", 74, true) (* ids demuxed out of a coalesced batch *);
    ]
  in
  let snaps =
    List.map
      (fun (name, seed, want_ids) ->
        (name, build_snapshot name ~n:384 ~seed, want_ids))
      specs
  in
  (* one oracle table for all dispatcher counts: id -> expectation *)
  let per_structure = 12 in
  let expected = Hashtbl.create 64 in
  let queries = ref [] in
  List.iteri
    (fun si (name, path, want_ids) ->
      let oracle = load_resident path in
      let qs = Meta.replay_queries oracle ~fraction:0.05 ~count:per_structure in
      Array.iteri
        (fun i q ->
          let id = (100 * (si + 1)) + i in
          let r = Query_engine.domain_reporter () in
          Emio.Reporter.clear r;
          let c =
            if want_ids then Query_engine.run_one ~reporter:r oracle.Meta.inst q
            else Query_engine.run_one oracle.Meta.inst q
          in
          let ids =
            if want_ids then begin
              let a = Emio.Reporter.to_array r in
              Array.sort compare a;
              a
            end
            else [||]
          in
          Hashtbl.replace expected id (name, want_ids, c, ids);
          queries := (id, name, want_ids, q) :: !queries)
        qs)
    snaps;
  (* interleave structures so coalesced batches are mixed and the
     per-structure grouping has to demux *)
  let queries =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> compare (a mod 100, a) (b mod 100, b)) !queries
  in
  let total = List.length queries in
  List.iter
    (fun k ->
      let cfg =
        {
          Server.default_config with
          port = 0;
          snapshots = List.map (fun (_, p, _) -> p) snaps;
          dispatchers = k;
          batch_max = 16;
          coalesce_us = 20_000;
          default_deadline_ms = 30_000;
          dispatch_delay_s = 0.05;
        }
      in
      with_server cfg (fun srv ->
          let eff = Server.effective_dispatchers srv in
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: effective dispatchers sane" k)
            true
            (eff >= 1 && eff <= k);
          let fd = connect (Server.port srv) in
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          List.iter
            (fun (id, name, want_ids, q) ->
              send fd (query ~want_ids ~id ~structure:name q))
            queries;
          for _ = 1 to total do
            match recv fd with
            | Protocol.Result res -> (
                match Hashtbl.find_opt expected res.id with
                | None -> Alcotest.failf "k=%d: unknown id %d" k res.id
                | Some (name, want_ids, c, ids) ->
                    let label f =
                      Printf.sprintf "k=%d %s id %d: %s" k name res.id f
                    in
                    check (label "count") c.Query_engine.result res.count;
                    check (label "reads") c.Query_engine.reads res.reads;
                    check (label "writes") c.Query_engine.writes res.writes;
                    check (label "hits") c.Query_engine.hits res.hits;
                    if want_ids then begin
                      let got = Array.copy res.ids in
                      Array.sort compare got;
                      Alcotest.(check (array int)) (label "ids") ids got
                    end
                    else check (label "no ids") 0 (Array.length res.ids))
            | m ->
                Alcotest.failf "k=%d: unexpected %s" k
                  (Format.asprintf "%a" Protocol.pp m)
          done;
          let st = Server.stats srv in
          check (Printf.sprintf "k=%d: all served" k) total st.Server.served;
          check (Printf.sprintf "k=%d: no errors" k) 0 st.Server.errors;
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: real coalesced batches formed" k)
            true (st.Server.max_batch >= 2);
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: fewer batches than requests" k)
            true
            (st.Server.batches < total)))
    [ 1; 2; 4 ]

(* the Stats verb: what loadgen stamps into BENCH_SERVE.json meta *)
let test_e2e_stats_query () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:81 in
  let cfg =
    {
      Server.default_config with
      port = 0;
      snapshots = [ h2 ];
      dispatchers = 2;
      readers = 2;
    }
  in
  with_server cfg (fun srv ->
      let fd = connect (Server.port srv) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      send fd (query ~id:1 ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] });
      (match recv fd with
      | Protocol.Result r -> check "query answered" 1 r.id
      | m ->
          Alcotest.failf "expected a result, got %s"
            (Format.asprintf "%a" Protocol.pp m));
      send fd (Protocol.Stats_query { id = 42 });
      match recv fd with
      | Protocol.Stats { id; stats } ->
          check "stats id echoed" 42 id;
          check "stats: dispatchers" (Server.effective_dispatchers srv)
            stats.Protocol.dispatchers;
          check "stats: readers" (Server.effective_readers srv)
            stats.Protocol.readers;
          check "stats: domains" (Server.effective_domains srv)
            stats.Protocol.domains;
          check "stats: served so far" 1 stats.Protocol.served;
          Alcotest.(check bool) "stats: accepted >= 1" true
            (stats.Protocol.accepted >= 1)
      | m ->
          Alcotest.failf "expected Stats, got %s"
            (Format.asprintf "%a" Protocol.pp m))

(* stop() must drain: the queued backlog is executed and answered
   before connections close. *)
let test_e2e_drain () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:51 in
  let cfg =
    {
      Server.default_config with
      port = 0;
      snapshots = [ h2 ];
      default_deadline_ms = 30_000;
      dispatch_delay_s = 0.2;
    }
  in
  let srv = Server.start cfg in
  let fd = connect (Server.port srv) in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let n = 3 in
  for id = 1 to n do
    send fd (query ~id ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] })
  done;
  (* let the reader thread admit all three, then drain *)
  Thread.delay 0.1;
  Server.stop srv;
  let results, _, _, _ = count_responses fd n in
  check "backlog answered through drain" n results;
  check "stats: served" n (Server.stats srv).Server.served;
  (match Frame.read fd with
  | Error (Frame.Closed | Frame.Truncated _) -> ()
  | Ok m ->
      Alcotest.failf "expected close after drain, got %s"
        (Format.asprintf "%a" Protocol.pp m)
  | Error e ->
      Alcotest.failf "expected close after drain, got %s"
        (Frame.read_error_to_string e));
  (* stop is idempotent *)
  Server.stop srv

(* a request arriving during the drain is shed, not hung *)
let test_e2e_shed_while_draining () =
  let h2 = build_snapshot "h2" ~n:256 ~seed:61 in
  let cfg =
    {
      Server.default_config with
      port = 0;
      snapshots = [ h2 ];
      default_deadline_ms = 30_000;
      dispatch_delay_s = 0.4;
    }
  in
  let srv = Server.start cfg in
  let fd = connect (Server.port srv) in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  send fd (query ~id:1 ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] });
  Thread.delay 0.1;
  let stopper = Thread.create (fun () -> Server.stop srv) () in
  (* stop() is now mid-drain, waiting out the 0.4 s dispatcher stall *)
  Thread.delay 0.1;
  send fd (query ~id:2 ~structure:"h2" { Index.a0 = 100.; a = [| 0.1 |] });
  let seen_drain = ref false and seen_result = ref false in
  for _ = 1 to 2 do
    match recv fd with
    | Protocol.Result r ->
        check "drained request" 1 r.id;
        seen_result := true
    | Protocol.Shed { id; reason = Protocol.Draining } ->
        check "late request" 2 id;
        seen_drain := true
    | m ->
        Alcotest.failf "unexpected response %s"
          (Format.asprintf "%a" Protocol.pp m)
  done;
  Thread.join stopper;
  Alcotest.(check bool) "backlog served" true !seen_result;
  Alcotest.(check bool) "late arrival shed as Draining" true !seen_drain

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_flipped_byte;
          Alcotest.test_case "roundtrip of a known message" `Quick (fun () ->
              match Frame.decode (Frame.encode sample_msg) with
              | Ok m -> Alcotest.check msg_testable "sample" sample_msg m
              | Error e -> Alcotest.fail (Frame.read_error_to_string e));
        ] );
      ( "frame rejection",
        [
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "oversized" `Quick test_oversized;
          Alcotest.test_case "malformed" `Quick test_malformed;
        ] );
      ( "frame streaming",
        [
          Alcotest.test_case "incremental parse" `Quick test_parse_incremental;
          Alcotest.test_case "partial and blocked writes" `Quick
            test_write_some_partial_and_blocked;
          Alcotest.test_case "write to a closed peer" `Quick
            test_write_some_closed_peer;
        ] );
      ( "admission",
        [
          Alcotest.test_case "fifo and full" `Quick test_admission_fifo_and_full;
          Alcotest.test_case "close and drain" `Quick
            test_admission_close_and_drain;
          Alcotest.test_case "concurrent pushers" `Quick
            test_admission_concurrent;
          Alcotest.test_case "concurrent consumers" `Quick
            test_admission_multi_consumer;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "results match the oracle" `Quick test_e2e_oracle;
          Alcotest.test_case "typed rejections" `Quick test_e2e_rejections;
          Alcotest.test_case "coalesced batches match the oracle" `Quick
            test_e2e_coalescing_oracle;
          Alcotest.test_case "stats query" `Quick test_e2e_stats_query;
          Alcotest.test_case "queue-full shedding" `Quick
            test_e2e_queue_full_shed;
          Alcotest.test_case "deadline shedding" `Quick test_e2e_deadline_shed;
          Alcotest.test_case "graceful drain" `Quick test_e2e_drain;
          Alcotest.test_case "shed while draining" `Quick
            test_e2e_shed_while_draining;
        ] );
    ]
