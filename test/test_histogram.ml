(* The log-bucketed latency histogram behind `lcsearch loadgen`:
   bucket geometry invariants, exactness below the unit-bucket
   threshold, the bounded-relative-error contract against exact
   nearest-rank percentiles, and merge = record-all. *)

module H = Lcsearch_index.Histogram

let check = Alcotest.(check int)

(* ---- bucket geometry ---- *)

(* Every bucket must contain its own bounds, bounds must tile the
   value range with no gaps or overlaps, and lows must be strictly
   increasing. *)
let test_bucket_boundaries () =
  for i = 0 to H.n_buckets - 1 do
    check (Printf.sprintf "index (lo %d)" i) i (H.bucket_index (H.bucket_lo i));
    check (Printf.sprintf "index (hi %d)" i) i (H.bucket_index (H.bucket_hi i));
    Alcotest.(check bool)
      (Printf.sprintf "lo <= hi at %d" i)
      true
      (H.bucket_lo i <= H.bucket_hi i);
    if i > 0 then begin
      Alcotest.(check bool)
        (Printf.sprintf "lows increase at %d" i)
        true
        (H.bucket_lo (i - 1) < H.bucket_lo i);
      check
        (Printf.sprintf "no gap before %d" i)
        (H.bucket_lo i)
        (H.bucket_hi (i - 1) + 1)
    end
  done;
  check "first bucket is 0" 0 (H.bucket_lo 0);
  check "last bucket reaches max_value" H.max_value
    (H.bucket_hi (H.n_buckets - 1))

let test_bucket_index_edges () =
  check "negative clamps to 0" 0 (H.bucket_index (-5));
  check "over max clamps to last bucket" (H.n_buckets - 1)
    (H.bucket_index max_int);
  (* below sub_count buckets are unit-width: index = value *)
  check "unit bucket 0" 0 (H.bucket_index 0);
  check "unit bucket 255" 255 (H.bucket_index 255);
  check "first octave bucket" 256 (H.bucket_index 256)

(* The advertised quantization bound: hi/lo width relative to lo is
   under 2/256 for every bucket past the unit range. *)
let test_relative_width_bound () =
  for i = 256 to H.n_buckets - 1 do
    let lo = H.bucket_lo i and hi = H.bucket_hi i in
    let rel = float_of_int (hi - lo) /. float_of_int lo in
    if rel > 2. /. 256. then
      Alcotest.failf "bucket %d: [%d, %d] relative width %.5f" i lo hi rel
  done

(* ---- recording and summary statistics ---- *)

let test_counts_and_moments () =
  let h = H.create () in
  check "fresh count" 0 (H.count h);
  check "fresh min" 0 (H.min_recorded h);
  check "fresh max" 0 (H.max_recorded h);
  Alcotest.(check (float 1e-9)) "fresh mean" 0. (H.mean h);
  List.iter (H.record h) [ 10; 20; 30 ];
  check "count" 3 (H.count h);
  check "min" 10 (H.min_recorded h);
  check "max" 30 (H.max_recorded h);
  Alcotest.(check (float 1e-9)) "mean" 20. (H.mean h);
  H.record h (-7);
  check "negative clamps to 0" 0 (H.min_recorded h);
  H.clear h;
  check "clear resets count" 0 (H.count h);
  H.record h 5;
  check "reusable after clear" 5 (H.max_recorded h)

(* Below 256 every bucket is unit-width, so percentiles are exact
   nearest-rank. *)
let test_exact_below_unit_threshold () =
  let h = H.create () in
  for v = 1 to 100 do
    H.record h v
  done;
  check "p50" 50 (H.percentile h 0.5);
  check "p90" 90 (H.percentile h 0.9);
  check "p99" 99 (H.percentile h 0.99);
  check "p100" 100 (H.percentile h 1.0);
  check "p0 -> rank 1" 1 (H.percentile h 0.0)

(* The top percentile never over-reports past the true maximum: a
   single large sample deep inside a wide bucket must come back
   exactly. *)
let test_max_clamped () =
  let h = H.create () in
  H.record h 1_000_003;
  check "p999 of singleton" 1_000_003 (H.percentile h 0.999);
  check "p50 of singleton" 1_000_003 (H.percentile h 0.5)

let exact_nearest_rank sorted p =
  let n = Array.length sorted in
  let r = int_of_float (ceil (p *. float_of_int n)) in
  sorted.(max 1 (min n r) - 1)

(* Against exact nearest-rank on random nanosecond-scale samples the
   histogram answer must sit in [exact, exact * (1 + 2/256)] — it
   reports a bucket's inclusive upper bound, so it can only round up,
   and only within the quantization bound. *)
let test_relative_error_vs_exact () =
  let rng = Random.State.make [| 20260809 |] in
  let n = 5_000 in
  let samples =
    Array.init n (fun _ ->
        (* span several octaves: ~1us .. ~100ms in ns *)
        let mag = 3 + Random.State.int rng 6 in
        let base = int_of_float (10. ** float_of_int mag) in
        base + Random.State.int rng (9 * base))
  in
  let h = H.create () in
  Array.iter (H.record h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      let exact = exact_nearest_rank sorted p in
      let approx = H.percentile h p in
      if approx < exact then
        Alcotest.failf "p%.3f: histogram %d below exact %d" p approx exact;
      let rel = float_of_int (approx - exact) /. float_of_int exact in
      if rel > 2. /. 256. then
        Alcotest.failf "p%.3f: histogram %d vs exact %d, error %.5f" p approx
          exact rel)
    [ 0.5; 0.9; 0.95; 0.99; 0.999; 1.0 ]

(* ---- merge ---- *)

(* merging shards must be indistinguishable from recording everything
   into one histogram: same counts, same moments, same percentiles. *)
let test_merge_equals_record_all () =
  let rng = Random.State.make [| 4242 |] in
  let all = H.create () in
  let shards = Array.init 4 (fun _ -> H.create ()) in
  for i = 0 to 9_999 do
    let v = Random.State.int rng 1_000_000 in
    H.record all v;
    H.record shards.(i mod 4) v
  done;
  let merged = H.create () in
  Array.iter (fun src -> H.merge_into ~src ~dst:merged) shards;
  check "count" (H.count all) (H.count merged);
  check "min" (H.min_recorded all) (H.min_recorded merged);
  check "max" (H.max_recorded all) (H.max_recorded merged);
  Alcotest.(check (float 1e-9)) "mean" (H.mean all) (H.mean merged);
  List.iter
    (fun p ->
      check
        (Printf.sprintf "p%.3f" p)
        (H.percentile all p)
        (H.percentile merged p))
    [ 0.5; 0.9; 0.99; 0.999; 1.0 ];
  (* merging an empty shard changes nothing, including min/max *)
  let before = (H.min_recorded merged, H.max_recorded merged) in
  H.merge_into ~src:(H.create ()) ~dst:merged;
  Alcotest.(check (pair int int)) "empty merge is a no-op" before
    (H.min_recorded merged, H.max_recorded merged)

let test_invalid_args () =
  let h = H.create () in
  (match H.percentile h 0.5 with
  | _ -> Alcotest.fail "percentile of empty histogram must raise"
  | exception Invalid_argument _ -> ());
  H.record h 1;
  (match H.percentile h 1.5 with
  | _ -> Alcotest.fail "p > 1 must raise"
  | exception Invalid_argument _ -> ());
  (match H.percentile h (-0.1) with
  | _ -> Alcotest.fail "p < 0 must raise"
  | exception Invalid_argument _ -> ());
  match H.bucket_lo (-1) with
  | _ -> Alcotest.fail "bucket_lo out of range must raise"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "histogram"
    [
      ( "buckets",
        [
          Alcotest.test_case "boundary invariants" `Quick
            test_bucket_boundaries;
          Alcotest.test_case "index edge cases" `Quick test_bucket_index_edges;
          Alcotest.test_case "relative width bound" `Quick
            test_relative_width_bound;
        ] );
      ( "record",
        [
          Alcotest.test_case "counts and moments" `Quick
            test_counts_and_moments;
          Alcotest.test_case "exact below 256" `Quick
            test_exact_below_unit_threshold;
          Alcotest.test_case "max clamps the top bucket" `Quick
            test_max_clamped;
          Alcotest.test_case "relative error vs exact" `Quick
            test_relative_error_vs_exact;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge = record-all" `Quick
            test_merge_equals_record_all;
        ] );
      ("errors", [ Alcotest.test_case "invalid args" `Quick test_invalid_args ]);
    ]
