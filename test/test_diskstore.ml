(* Tests for the persistent block store: CRC32, checksummed page I/O,
   the buffer pool (LRU + CLOCK eviction, dirty write-back), the file
   backend behind Emio.Store, and snapshot save/load robustness. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_path () =
  let path = Filename.temp_file "lcsearch_test" ".snapshot" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  Bytes.to_string b

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---------- CRC32 ---------- *)

let test_crc32_vectors () =
  check "check value" 0xCBF43926 (Diskstore.Crc32.digest_string "123456789");
  check "empty" 0 (Diskstore.Crc32.digest_string "");
  let b = Bytes.of_string "hello, block store" in
  let whole = Diskstore.Crc32.digest b in
  let part =
    Diskstore.Crc32.update
      (Diskstore.Crc32.update 0 b ~pos:0 ~len:5)
      b ~pos:5 ~len:(Bytes.length b - 5)
  in
  check "incremental = whole" whole part

(* ---------- Block_file ---------- *)

let with_block_file ?(page_size = 128) f =
  let path = temp_path () in
  let stats = Emio.Io_stats.create () in
  let file = Diskstore.Block_file.create ~stats ~path ~page_size in
  let r = f path stats file in
  Diskstore.Block_file.close file;
  r

let expect_payload = function
  | Ok b -> Bytes.to_string b
  | Error e ->
      Alcotest.failf "unexpected read error: %a"
        Diskstore.Block_file.pp_read_error e

let test_block_file_roundtrip () =
  with_block_file (fun path stats file ->
      let cap = Diskstore.Block_file.payload_capacity file in
      check "capacity" 120 cap;
      Diskstore.Block_file.write_page file 0 (Bytes.of_string "alpha");
      Diskstore.Block_file.write_page file 1 (Bytes.make cap 'x');
      Diskstore.Block_file.write_page file 2 Bytes.empty;
      check "pages" 3 (Diskstore.Block_file.pages file);
      Alcotest.(check string)
        "page 0" "alpha"
        (expect_payload (Diskstore.Block_file.read_page file 0));
      Alcotest.(check string)
        "page 1" (String.make cap 'x')
        (expect_payload (Diskstore.Block_file.read_page file 1));
      Alcotest.(check string)
        "page 2" ""
        (expect_payload (Diskstore.Block_file.read_page file 2));
      check "bytes written = 3 pages" (3 * 128)
        (Emio.Io_stats.bytes_written stats);
      check "writes" 3 (Emio.Io_stats.writes stats);
      Diskstore.Block_file.flush file;
      (* reopen from disk *)
      let stats2 = Emio.Io_stats.create () in
      let ro =
        Diskstore.Block_file.open_existing ~stats:stats2 ~path ~page_size:128 ()
      in
      Alcotest.(check string)
        "reopened page 0" "alpha"
        (expect_payload (Diskstore.Block_file.read_page ro 0));
      check "reopened pages" 3 (Diskstore.Block_file.pages ro);
      check "bytes read" 128 (Emio.Io_stats.bytes_read stats2);
      Diskstore.Block_file.close ro)

let test_block_file_corruption () =
  with_block_file (fun path _stats file ->
      Diskstore.Block_file.write_page file 0 (Bytes.of_string "payload-zero");
      Diskstore.Block_file.write_page file 1 (Bytes.of_string "payload-one");
      Diskstore.Block_file.flush file;
      (* flip one payload byte of page 1 *)
      let raw = Bytes.of_string (read_file path) in
      let off = 128 + 8 + 3 in
      Bytes.set raw off (Char.chr (Char.code (Bytes.get raw off) lxor 0x40));
      write_file path (Bytes.to_string raw);
      let stats = Emio.Io_stats.create () in
      let ro =
        Diskstore.Block_file.open_existing ~stats ~path ~page_size:128 ()
      in
      (match Diskstore.Block_file.read_page ro 0 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "page 0 should be intact");
      (match Diskstore.Block_file.read_page ro 1 with
      | Error (Diskstore.Block_file.Bad_checksum { page = 1 }) -> ()
      | Ok _ -> Alcotest.fail "flipped byte not detected"
      | Error e ->
          Alcotest.failf "wrong error: %a" Diskstore.Block_file.pp_read_error e);
      (match Diskstore.Block_file.read_page ro 7 with
      | Error (Diskstore.Block_file.Out_of_range _) -> ()
      | _ -> Alcotest.fail "expected Out_of_range");
      Diskstore.Block_file.close ro;
      (* truncate mid-page *)
      let whole = read_file path in
      write_file path (String.sub whole 0 (128 + 13));
      let ro =
        Diskstore.Block_file.open_existing ~stats ~path ~page_size:128 ()
      in
      (match Diskstore.Block_file.read_page ro 1 with
      | Error (Diskstore.Block_file.Short_page { page = 1 }) -> ()
      | _ -> Alcotest.fail "expected Short_page");
      Diskstore.Block_file.close ro)

(* ---------- Buffer_pool ---------- *)

let with_pool ?(page_size = 128) ~policy ~capacity f =
  with_block_file ~page_size (fun path stats file ->
      let pool = Diskstore.Buffer_pool.create ~file ~policy ~capacity in
      f path stats pool)

let pool_read pool page =
  match Diskstore.Buffer_pool.read_page pool page with
  | Ok b -> Bytes.to_string b
  | Error e ->
      Alcotest.failf "pool read error: %a" Diskstore.Block_file.pp_read_error e

let test_pool_lru_eviction_order () =
  with_pool ~policy:Diskstore.Buffer_pool.Lru ~capacity:2
    (fun _path stats pool ->
      let file = Diskstore.Buffer_pool.file pool in
      for i = 0 to 3 do
        Diskstore.Block_file.write_page file i
          (Bytes.of_string (Printf.sprintf "page%d" i))
      done;
      Emio.Io_stats.reset stats;
      ignore (pool_read pool 0);
      ignore (pool_read pool 1);
      check "two misses" 2 (Emio.Io_stats.reads stats);
      ignore (pool_read pool 0);
      check "hit on 0" 1 (Emio.Io_stats.cache_hits stats);
      (* 1 is now least recently used; 2 evicts it *)
      ignore (pool_read pool 2);
      check "one eviction" 1 (Emio.Io_stats.evictions stats);
      Emio.Io_stats.reset stats;
      ignore (pool_read pool 0);
      check "0 survived (hit)" 1 (Emio.Io_stats.cache_hits stats);
      ignore (pool_read pool 1);
      check "1 was evicted (miss)" 1 (Emio.Io_stats.reads stats))

let test_pool_clock_second_chance () =
  with_pool ~policy:Diskstore.Buffer_pool.Clock ~capacity:2
    (fun _path stats pool ->
      let file = Diskstore.Buffer_pool.file pool in
      for i = 0 to 3 do
        Diskstore.Block_file.write_page file i
          (Bytes.of_string (Printf.sprintf "page%d" i))
      done;
      Emio.Io_stats.reset stats;
      ignore (pool_read pool 0);
      ignore (pool_read pool 1);
      (* both frames referenced: inserting 2 sweeps the full circle
         clearing both bits and evicts 0 (hand order).  Now 1's bit is
         clear and 2's is set *)
      ignore (pool_read pool 2);
      check "full sweep evicts in hand order" 1 (Emio.Io_stats.evictions stats);
      (* re-reference 2, then insert 3: the hand lands on 1 first, and
         2's set bit earns it a second chance — 1 is the victim *)
      ignore (pool_read pool 2);
      ignore (pool_read pool 3);
      check "second eviction" 2 (Emio.Io_stats.evictions stats);
      Emio.Io_stats.reset stats;
      ignore (pool_read pool 2);
      check "2 kept by second chance" 1 (Emio.Io_stats.cache_hits stats);
      ignore (pool_read pool 1);
      check "1 evicted" 1 (Emio.Io_stats.reads stats))

let test_pool_dirty_writeback_on_eviction () =
  with_pool ~policy:Diskstore.Buffer_pool.Lru ~capacity:1
    (fun _path stats pool ->
      let file = Diskstore.Buffer_pool.file pool in
      Emio.Io_stats.reset stats;
      Diskstore.Buffer_pool.write_page pool 0 (Bytes.of_string "dirty-zero");
      check "write buffered, no physical I/O" 0 (Emio.Io_stats.writes stats);
      Diskstore.Buffer_pool.write_page pool 1 (Bytes.of_string "dirty-one");
      check "eviction wrote page 0 back" 1 (Emio.Io_stats.writes stats);
      check "eviction recorded" 1 (Emio.Io_stats.evictions stats);
      (* page 0 must be physically readable now, bypassing the pool *)
      Alcotest.(check string)
        "written-back content" "dirty-zero"
        (expect_payload (Diskstore.Block_file.read_page file 0));
      Diskstore.Buffer_pool.flush pool;
      Alcotest.(check string)
        "flushed content" "dirty-one"
        (expect_payload (Diskstore.Block_file.read_page file 1)))

(* The same write sequence through a write-back pool (after flush) and
   through a pool-free (capacity 0) path must leave identical files. *)
let test_pool_flush_byte_identical () =
  let sequence pool =
    for i = 0 to 9 do
      Diskstore.Buffer_pool.write_page pool i
        (Bytes.of_string (Printf.sprintf "v1-page-%d" i))
    done;
    (* overwrite some resident and some evicted pages *)
    List.iter
      (fun i ->
        Diskstore.Buffer_pool.write_page pool i
          (Bytes.of_string (Printf.sprintf "v2-page-%d" i)))
      [ 3; 0; 7 ];
    ignore (pool_read pool 5);
    Diskstore.Buffer_pool.flush pool
  in
  let run ~policy ~capacity =
    with_pool ~policy ~capacity (fun path _stats pool ->
        sequence pool;
        read_file path)
  in
  let reference = run ~policy:Diskstore.Buffer_pool.Lru ~capacity:0 in
  check_bool "lru pool file identical" true
    (run ~policy:Diskstore.Buffer_pool.Lru ~capacity:3 = reference);
  check_bool "clock pool file identical" true
    (run ~policy:Diskstore.Buffer_pool.Clock ~capacity:3 = reference);
  check_bool "big pool file identical" true
    (run ~policy:Diskstore.Buffer_pool.Lru ~capacity:64 = reference)

(* ---------- Emio.Store over the file backend ---------- *)

let test_store_over_file_backend () =
  with_pool ~policy:Diskstore.Buffer_pool.Lru ~capacity:4
    (fun _path stats pool ->
      let fb = Diskstore.File_backend.create pool in
      let store =
        Emio.Store.create ~stats ~block_size:4 ~codec:Emio.Codec.int
          ~backend:(Diskstore.File_backend.backend fb) ()
      in
      check_bool "external" true (Emio.Store.is_external store);
      let id0 = Emio.Store.alloc store [| 1; 2; 3; 4 |] in
      let id1 = Emio.Store.alloc store [| 5; 6 |] in
      check "ids sequential" 1 id1;
      check "blocks used" 2 (Emio.Store.blocks_used store);
      Alcotest.(check (array int)) "read back" [| 1; 2; 3; 4 |]
        (Emio.Store.read store id0);
      Emio.Store.write store id1 [| 9; 9; 9 |];
      Alcotest.(check (array int)) "after write" [| 9; 9; 9 |]
        (Emio.Store.read store id1);
      Emio.Store.flush store;
      check_bool "physical bytes written" true
        (Emio.Io_stats.bytes_written stats > 0))

(* ---------- Snapshots ---------- *)

let build_points seed n =
  let rng = Workload.rng seed in
  Workload.uniform2 rng ~n ~range:100.

let sorted_pts l =
  List.sort compare (List.map (fun p -> (Geom.Point2.x p, Geom.Point2.y p)) l)

let expect_loaded = function
  | Ok v -> v
  | Error e -> Alcotest.failf "load failed: %a" Diskstore.Snapshot.pp_error e

let test_snapshot_h2_roundtrip () =
  let points = build_points 4242 600 in
  let stats = Emio.Io_stats.create () in
  let h2 = Core.Halfspace2d.build ~stats ~block_size:16 points in
  let path = temp_path () in
  Core.Halfspace2d.save_snapshot h2 ~path ~meta:"n=600" ~page_size:512 ();
  let stats2 = Emio.Io_stats.create () in
  let loaded, info =
    expect_loaded (Core.Halfspace2d.of_snapshot ~stats:stats2 ~cache_pages:8 path)
  in
  Alcotest.(check string) "kind" Core.Halfspace2d.snapshot_kind
    info.Diskstore.Snapshot.kind;
  Alcotest.(check string) "meta" "n=600" info.Diskstore.Snapshot.meta;
  check "block size" 16 info.Diskstore.Snapshot.block_size;
  check "same length" (Core.Halfspace2d.length h2)
    (Core.Halfspace2d.length loaded);
  Emio.Io_stats.reset stats2;
  let rng = Workload.rng 777 in
  for _ = 1 to 30 do
    let slope, icept =
      Workload.halfplane_with_selectivity rng points ~fraction:0.05
    in
    let expect = sorted_pts (Core.Halfspace2d.query h2 ~slope ~icept) in
    let got = sorted_pts (Core.Halfspace2d.query loaded ~slope ~icept) in
    check_bool "same result set" true (expect = got)
  done;
  check_bool "file pages actually read" true (Emio.Io_stats.reads stats2 > 0);
  check_bool "bytes accounted" true (Emio.Io_stats.bytes_read stats2 > 0)

let prop_snapshot_h2_queries =
  QCheck.Test.make ~name:"snapshot h2 ≡ in-memory h2 on random halfplanes"
    ~count:30
    QCheck.(
      triple (int_range 0 1000) (float_range (-3.) 3.) (float_range (-120.) 120.))
    (fun (seed, slope, icept) ->
      (* one shared structure per property run would hide rebuild bugs;
         a fresh small one per case keeps it honest and fast *)
      let points = build_points (10_000 + seed) 120 in
      let stats = Emio.Io_stats.create () in
      let h2 = Core.Halfspace2d.build ~stats ~block_size:8 points in
      let path = temp_path () in
      Core.Halfspace2d.save_snapshot h2 ~path ~page_size:256 ();
      let stats2 = Emio.Io_stats.create () in
      match Core.Halfspace2d.of_snapshot ~stats:stats2 ~cache_pages:4 path with
      | Error _ -> false
      | Ok (loaded, _) ->
          sorted_pts (Core.Halfspace2d.query h2 ~slope ~icept)
          = sorted_pts (Core.Halfspace2d.query loaded ~slope ~icept))

let test_snapshot_rtree_and_scan () =
  let points = build_points 99 500 in
  let stats = Emio.Io_stats.create () in
  let rt = Baselines.Rtree.build ~stats ~block_size:16 points in
  let sc = Baselines.Linear_scan.build ~stats ~block_size:16 points in
  let rt_path = temp_path () and sc_path = temp_path () in
  Baselines.Rtree.save_snapshot rt ~path:rt_path ();
  Baselines.Linear_scan.save_snapshot sc ~path:sc_path ();
  let s2 = Emio.Io_stats.create () in
  let rt', _ = expect_loaded (Baselines.Rtree.of_snapshot ~stats:s2 rt_path) in
  let sc_any, _ =
    expect_loaded (Baselines.Linear_scan.of_snapshot ~stats:s2 sc_path)
  in
  let sc' =
    match sc_any with
    | Baselines.Linear_scan.T2 s -> s
    | Baselines.Linear_scan.Td _ -> Alcotest.fail "expected a 2-d scan"
  in
  let rng = Workload.rng 31 in
  for _ = 1 to 10 do
    let slope, icept =
      Workload.halfplane_with_selectivity rng points ~fraction:0.1
    in
    check_bool "rtree same" true
      (sorted_pts (Baselines.Rtree.query_halfplane rt ~slope ~icept)
      = sorted_pts (Baselines.Rtree.query_halfplane rt' ~slope ~icept));
    check "scan same count"
      (Baselines.Linear_scan.query_count sc ~slope ~icept)
      (Baselines.Linear_scan.query_count sc' ~slope ~icept)
  done

let test_snapshot_kind_mismatch () =
  let points = build_points 7 100 in
  let stats = Emio.Io_stats.create () in
  let sc = Baselines.Linear_scan.build ~stats ~block_size:8 points in
  let path = temp_path () in
  Baselines.Linear_scan.save_snapshot sc ~path ();
  match Core.Halfspace2d.of_snapshot ~stats path with
  | Error (Diskstore.Snapshot.Kind_mismatch { expected; got }) ->
      Alcotest.(check string) "expected" Core.Halfspace2d.snapshot_kind expected;
      Alcotest.(check string) "got" Baselines.Linear_scan.snapshot_kind got
  | Ok _ -> Alcotest.fail "kind mismatch not detected"
  | Error e -> Alcotest.failf "wrong error: %a" Diskstore.Snapshot.pp_error e

let saved_h2_snapshot () =
  let points = build_points 1234 300 in
  let stats = Emio.Io_stats.create () in
  let h2 = Core.Halfspace2d.build ~stats ~block_size:16 points in
  let path = temp_path () in
  Core.Halfspace2d.save_snapshot h2 ~path ~page_size:256 ();
  path

let load_h2 path =
  Core.Halfspace2d.of_snapshot ~stats:(Emio.Io_stats.create ()) path

let test_snapshot_bad_magic () =
  let path = temp_path () in
  write_file path (String.make 4096 'Z');
  (match load_h2 path with
  | Error Diskstore.Snapshot.Bad_magic -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Diskstore.Snapshot.pp_error e);
  write_file path "short";
  match load_h2 path with
  | Error (Diskstore.Snapshot.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "5-byte file accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Diskstore.Snapshot.pp_error e

(* every truncation point must yield a typed error, never a crash or a
   silently wrong structure *)
let test_snapshot_truncation_corpus () =
  let path = saved_h2_snapshot () in
  let whole = read_file path in
  let n = String.length whole in
  List.iter
    (fun keep ->
      let keep = min keep (n - 1) in
      let stub = temp_path () in
      write_file stub (String.sub whole 0 keep);
      match load_h2 stub with
      | Error
          ( Diskstore.Snapshot.Truncated _ | Diskstore.Snapshot.Bad_checksum _
          | Diskstore.Snapshot.Bad_header _ | Diskstore.Snapshot.Bad_magic
          | Diskstore.Snapshot.Bad_section_crc _ ) ->
          ()
      | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" keep
      | Error e ->
          Alcotest.failf "truncation to %d: wrong error %a" keep
            Diskstore.Snapshot.pp_error e)
    [ 0; 1; 15; 100; 256; 300; n / 2; n - 200; n - 1 ]

(* flipping any single byte must be caught by a page CRC (or the header
   checks) at load time *)
let test_snapshot_flipped_byte_corpus () =
  let path = saved_h2_snapshot () in
  let whole = read_file path in
  let n = String.length whole in
  let offsets = [ 0; 9; 40; 257; 300; 512; n / 2; (3 * n) / 4; n - 10 ] in
  List.iter
    (fun off ->
      let off = min off (n - 1) in
      let corrupt = Bytes.of_string whole in
      Bytes.set corrupt off
        (Char.chr (Char.code (Bytes.get corrupt off) lxor 0x01));
      let stub = temp_path () in
      write_file stub (Bytes.to_string corrupt);
      match load_h2 stub with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "flipped byte at %d accepted" off)
    offsets

(* a v1 (closure-marshalled) snapshot must be rejected with the typed
   Unsupported_version error, not misparsed *)
let test_snapshot_v1_rejected () =
  let path = saved_h2_snapshot () in
  let raw = Bytes.of_string (read_file path) in
  (* the version u32 sits at file offset 16 (8-byte page header, then
     the 8-byte magic); rewrite it to 1 and re-seal the header page's
     CRC so only the version check can fire *)
  Bytes.set raw 16 '\001';
  Bytes.set raw 17 '\000';
  Bytes.set raw 18 '\000';
  Bytes.set raw 19 '\000';
  let psz = 256 in
  let crc =
    Diskstore.Crc32.update
      (Diskstore.Crc32.update 0 raw ~pos:0 ~len:4)
      raw ~pos:8 ~len:(psz - 8)
  in
  Bytes.set raw 4 (Char.chr (crc land 0xFF));
  Bytes.set raw 5 (Char.chr ((crc lsr 8) land 0xFF));
  Bytes.set raw 6 (Char.chr ((crc lsr 16) land 0xFF));
  Bytes.set raw 7 (Char.chr ((crc lsr 24) land 0xFF));
  let stub = temp_path () in
  write_file stub (Bytes.to_string raw);
  match load_h2 stub with
  | Error (Diskstore.Snapshot.Unsupported_version 1) -> ()
  | Ok _ -> Alcotest.fail "v1 snapshot accepted"
  | Error e -> Alcotest.failf "wrong error: %a" Diskstore.Snapshot.pp_error e

let test_snapshot_load_is_cold_process_safe () =
  (* the load path must not depend on any state of the saving run:
     simulate a "fresh process" by only using the path *)
  let path = saved_h2_snapshot () in
  let points = build_points 1234 300 in
  let stats = Emio.Io_stats.create () in
  let reference = Core.Halfspace2d.build ~stats ~block_size:16 points in
  let loaded, _ = expect_loaded (load_h2 path) in
  let rng = Workload.rng 5150 in
  for _ = 1 to 10 do
    let slope, icept =
      Workload.halfplane_with_selectivity rng points ~fraction:0.03
    in
    check "query count equal"
      (Core.Halfspace2d.query_count reference ~slope ~icept)
      (Core.Halfspace2d.query_count loaded ~slope ~icept)
  done

(* ---------- corruption corpora across every snapshot kind ----------

   For each registered snapshot-capable structure: save a small
   instance, check a clean reopen answers exactly what the linear-scan
   oracle answers, then hit the file with the truncation and
   flipped-byte corpora — every damaged variant must yield a typed
   error, never a crash or a silently wrong structure. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let snapshot_corpus_case (module M : Index.S) () =
  match M.snapshot with
  | None -> ()
  | Some ops ->
      let dim = List.hd M.dims in
      let rng = Workload.rng (4000 + (Hashtbl.hash M.name mod 101)) in
      let ds =
        Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:400
          (module M : Index.S)
      in
      let qs = Workloads.queries rng ds ~fraction:0.08 ~count:4 in
      let stats = Emio.Io_stats.create () in
      let params = { Index.default_params with Index.block_size = 16 } in
      let t = M.build ~params ~stats ds in
      let path = temp_path () in
      ops.Index.save t ~path ~meta:"corpus" ~page_size:(Some 512);
      let load p =
        ops.Index.load
          ~stats:(Emio.Io_stats.create ())
          ~policy:Diskstore.Buffer_pool.Lru ~cache_pages:8 p
      in
      let (module Oracle : Index.S) = Registry.find_exn "scan" in
      let oracle = Oracle.build ~params:Index.default_params ~stats ds in
      (match load path with
      | Error e ->
          Alcotest.failf "%s: load failed: %a" M.name Diskstore.Snapshot.pp_error
            e
      | Ok (loaded, info) ->
          Alcotest.(check string) (M.name ^ ": kind") ops.Index.snapshot_kind
            info.Diskstore.Snapshot.kind;
          List.iteri
            (fun i q ->
              check_bool
                (Printf.sprintf "%s query %d: reopened = oracle" M.name i)
                true
                (sorted_rows (M.query loaded q)
                = sorted_rows (Oracle.query oracle q)))
            qs);
      let whole = read_file path in
      let n = String.length whole in
      List.iter
        (fun keep ->
          let keep = max 0 (min keep (n - 1)) in
          let stub = temp_path () in
          write_file stub (String.sub whole 0 keep);
          match load stub with
          | Error
              ( Diskstore.Snapshot.Truncated _
              | Diskstore.Snapshot.Bad_checksum _
              | Diskstore.Snapshot.Bad_header _ | Diskstore.Snapshot.Bad_magic
              | Diskstore.Snapshot.Bad_section_crc _ ) ->
              ()
          | Ok _ ->
              Alcotest.failf "%s: truncation to %d bytes accepted" M.name keep
          | Error e ->
              Alcotest.failf "%s: truncation to %d: wrong error %a" M.name keep
                Diskstore.Snapshot.pp_error e)
        [ 0; 1; 15; 100; 256; 300; n / 2; n - 200; n - 1 ];
      List.iter
        (fun off ->
          let off = max 0 (min off (n - 1)) in
          let corrupt = Bytes.of_string whole in
          Bytes.set corrupt off
            (Char.chr (Char.code (Bytes.get corrupt off) lxor 0x01));
          let stub = temp_path () in
          write_file stub (Bytes.to_string corrupt);
          match load stub with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "%s: flipped byte at %d accepted" M.name off)
        [ 0; 9; 40; 257; 300; 512; n / 2; (3 * n) / 4; n - 10 ]

let snapshot_corpus_tests =
  List.filter_map
    (fun (module M : Index.S) ->
      match M.snapshot with
      | None -> None
      | Some ops ->
          Some
            (Alcotest.test_case
               (Printf.sprintf "corpus %s" ops.Index.snapshot_kind)
               `Quick
               (snapshot_corpus_case (module M : Index.S))))
    (Registry.all ())

let () =
  Alcotest.run "diskstore"
    [
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32_vectors ]);
      ( "block_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_block_file_roundtrip;
          Alcotest.test_case "corruption" `Quick test_block_file_corruption;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "lru eviction order" `Quick
            test_pool_lru_eviction_order;
          Alcotest.test_case "clock second chance" `Quick
            test_pool_clock_second_chance;
          Alcotest.test_case "dirty write-back" `Quick
            test_pool_dirty_writeback_on_eviction;
          Alcotest.test_case "flush byte-identical" `Quick
            test_pool_flush_byte_identical;
        ] );
      ( "file_backend",
        [ Alcotest.test_case "store roundtrip" `Quick test_store_over_file_backend ]
      );
      ( "snapshot",
        [
          Alcotest.test_case "h2 roundtrip" `Quick test_snapshot_h2_roundtrip;
          QCheck_alcotest.to_alcotest prop_snapshot_h2_queries;
          Alcotest.test_case "rtree and scan" `Quick
            test_snapshot_rtree_and_scan;
          Alcotest.test_case "kind mismatch" `Quick test_snapshot_kind_mismatch;
          Alcotest.test_case "bad magic" `Quick test_snapshot_bad_magic;
          Alcotest.test_case "truncation corpus" `Quick
            test_snapshot_truncation_corpus;
          Alcotest.test_case "flipped-byte corpus" `Quick
            test_snapshot_flipped_byte_corpus;
          Alcotest.test_case "v1 rejected" `Quick test_snapshot_v1_rejected;
          Alcotest.test_case "cold reopen" `Quick
            test_snapshot_load_is_cold_process_safe;
        ] );
      ("snapshot corpora", snapshot_corpus_tests);
    ]
