(* Cross-validation properties: independently built structures (and
   independently randomized instances of the same structure) must agree
   on every query.  These catch bugs that single-oracle tests can miss
   when the oracle shares code with the implementation. *)

open Geom

let sorted_counts l = List.sort compare l

(* different random seeds (different levels lambda_i, different layer
   decompositions) must not change any answer *)
let prop_h2_seed_independent =
  QCheck.Test.make ~count:40 ~name:"Halfspace2d: answers independent of seed"
    QCheck.(pair (int_range 0 10_000) (int_range 50 400))
    (fun (seed, n) ->
      let rng = Workload.rng seed in
      let points = Workload.uniform2 rng ~n ~range:50. in
      let build s =
        Core.Halfspace2d.build ~stats:(Emio.Io_stats.create ()) ~block_size:8
          ~seed:s points
      in
      let t1 = build 1 and t2 = build 99 in
      List.for_all
        (fun _ ->
          let slope, icept =
            Workload.halfplane_with_selectivity rng points
              ~fraction:(Random.State.float rng 1.)
          in
          Core.Halfspace2d.query_count t1 ~slope ~icept
          = Core.Halfspace2d.query_count t2 ~slope ~icept)
        (List.init 8 Fun.id))

(* all five 2-D-capable reporting structures agree on the same data *)
let prop_all_2d_structures_agree =
  QCheck.Test.make ~count:25 ~name:"five 2-D structures agree"
    QCheck.(pair (int_range 0 10_000) (int_range 50 300))
    (fun (seed, n) ->
      let rng = Workload.rng seed in
      let points = Workload.clusters2 rng ~n ~clusters:4 ~sigma:5. ~range:50. in
      let coords =
        Array.map (fun p -> [| Point2.x p; Point2.y p |]) points
      in
      let stats () = Emio.Io_stats.create () in
      let h2 = Core.Halfspace2d.build ~stats:(stats ()) ~block_size:8 points in
      let pt =
        Core.Partition_tree.build ~stats:(stats ()) ~block_size:8 ~dim:2 coords
      in
      let sh =
        Core.Shallow_tree.build ~stats:(stats ()) ~block_size:8 ~dim:2 coords
      in
      let rt = Baselines.Rtree.build ~stats:(stats ()) ~block_size:8 points in
      let qt = Baselines.Quadtree.build ~stats:(stats ()) ~block_size:8 points in
      List.for_all
        (fun _ ->
          let slope, icept =
            Workload.halfplane_with_selectivity rng points
              ~fraction:(Random.State.float rng 1.)
          in
          let c1 = Core.Halfspace2d.query_count h2 ~slope ~icept in
          let c2 =
            List.length
              (Core.Partition_tree.query_halfspace pt ~a0:icept ~a:[| slope |])
          in
          let c3 =
            List.length
              (Core.Shallow_tree.query_halfspace sh ~a0:icept ~a:[| slope |])
          in
          let c4 = Baselines.Rtree.query_count rt ~slope ~icept in
          let c5 = Baselines.Quadtree.query_count qt ~slope ~icept in
          c1 = c2 && c2 = c3 && c3 = c4 && c4 = c5)
        (List.init 6 Fun.id))

(* The §5 remark (iii) equivalence anchor: the dynamized partition
   tree (the generic LSM layer over ptree — the logarithmic method
   whose trade-offs are analyzed in lib/index/lsm.mli), loaded purely
   through inserts, answers exactly like the static tree built in one
   shot.  This is the remark's claim made executable: dynamization
   costs a level fan-out, never answers. *)
let prop_dynamic_agrees_with_static =
  QCheck.Test.make ~count:30 ~name:"Lsm over ptree = static Partition_tree"
    QCheck.(pair (int_range 0 10_000) (int_range 20 200))
    (fun (seed, n) ->
      let module Index = Lcsearch_index.Index in
      let rng = Workload.rng seed in
      let coords = Workload.uniform_d rng ~n ~dim:2 ~range:30. in
      let stats () = Emio.Io_stats.create () in
      let stat_tree =
        Core.Partition_tree.build ~stats:(stats ()) ~block_size:4 ~dim:2 coords
      in
      let (module L : Index.S) =
        Lcsearch_index.Lsm.make ~memtable_cap:8
          ~inner:(Lcsearch_index.Registry.find_exn "ptree")
          ()
      in
      let t =
        L.build
          ~params:{ Index.default_params with block_size = 4 }
          ~stats:(stats ()) (Index.Pts2 [||])
      in
      let inst = Index.Instance ((module L), t) in
      let u = Option.get (Index.updater inst) in
      Array.iter (fun p -> ignore (u.Index.u_insert p)) coords;
      List.for_all
        (fun _ ->
          let a0, a =
            Workload.halfspace_d_with_selectivity rng coords
              ~fraction:(Random.State.float rng 1.)
          in
          List.length (Core.Partition_tree.query_halfspace stat_tree ~a0 ~a)
          = Index.query_count inst { Index.a0; a })
        (List.init 6 Fun.id))

(* §4 structures with 1 copy and 3 copies return identical plane sets *)
let prop_copies_equivalent =
  QCheck.Test.make ~count:20 ~name:"Lowest_planes: 1 copy = 3 copies"
    QCheck.(pair (int_range 0 10_000) (int_range 30 200))
    (fun (seed, n) ->
      let rng = Workload.rng seed in
      let planes =
        Array.init n (fun _ ->
            Plane3.make
              ~a:(Random.State.float rng 4. -. 2.)
              ~b:(Random.State.float rng 4. -. 2.)
              ~c:(Random.State.float rng 40. -. 20.))
      in
      let clip = (-50., -50., 50., 50.) in
      let build copies =
        Core.Lowest_planes.build ~stats:(Emio.Io_stats.create ())
          ~block_size:8 ~copies ~clip planes
      in
      let t1 = build 1 and t3 = build 3 in
      List.for_all
        (fun _ ->
          let x = Random.State.float rng 80. -. 40.
          and y = Random.State.float rng 80. -. 40. in
          let k = 1 + Random.State.int rng (n / 2) in
          let ids t = List.map fst (Core.Lowest_planes.k_lowest t ~x ~y ~k) in
          sorted_counts (ids t1) = sorted_counts (ids t3))
        (List.init 6 Fun.id))

(* Knn distances equal Disk_range membership: |disk(c, r)| counts
   exactly the neighbors at distance <= r *)
let prop_knn_consistent_with_disks =
  QCheck.Test.make ~count:20 ~name:"Knn and Disk_range are consistent"
    QCheck.(pair (int_range 0 10_000) (int_range 30 200))
    (fun (seed, n) ->
      let rng = Workload.rng seed in
      let points = Workload.uniform2 rng ~n ~range:30. in
      let clip = (-60., -60., 60., 60.) in
      let stats () = Emio.Io_stats.create () in
      let knn = Core.Knn.build ~stats:(stats ()) ~block_size:8 ~clip points in
      let disks =
        Core.Disk_range.build ~stats:(stats ()) ~block_size:8 ~clip points
      in
      List.for_all
        (fun _ ->
          let q =
            Point2.make
              (Random.State.float rng 100. -. 50.)
              (Random.State.float rng 100. -. 50.)
          in
          let k = 1 + Random.State.int rng 20 in
          match List.rev (Core.Knn.nearest knn q ~k) with
          | [] -> true
          | (_, dk) :: _ ->
              (* all k nearest lie within distance dk, so the disk of
                 radius dk holds at least k points *)
              Core.Disk_range.query_count disks ~center:q ~radius:dk >= k)
        (List.init 5 Fun.id))

let () =
  Alcotest.run "crossval"
    [
      ( "crossval",
        [
          QCheck_alcotest.to_alcotest prop_h2_seed_independent;
          QCheck_alcotest.to_alcotest prop_all_2d_structures_agree;
          QCheck_alcotest.to_alcotest prop_dynamic_agrees_with_static;
          QCheck_alcotest.to_alcotest prop_copies_equivalent;
          QCheck_alcotest.to_alcotest prop_knn_consistent_with_disks;
        ] );
    ]
