(* Tests for the external-memory simulator: block store, LRU cache,
   runs, external sort. *)

let check = Alcotest.(check int)

let test_store_counts () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let id1 = Emio.Store.alloc store [| 1; 2; 3; 4 |] in
  let id2 = Emio.Store.alloc store [| 5 |] in
  check "writes after two allocs" 2 (Emio.Io_stats.writes stats);
  let b1 = Emio.Store.read store id1 in
  check "block contents" 3 b1.(2);
  check "reads" 1 (Emio.Io_stats.reads stats);
  Emio.Store.write store id2 [| 9 |];
  check "writes" 3 (Emio.Io_stats.writes stats);
  check "blocks used" 2 (Emio.Store.blocks_used store)

let test_store_rejects_oversized () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:2 () in
  Alcotest.check_raises "oversized block"
    (Invalid_argument "Store: block larger than block_size") (fun () ->
      ignore (Emio.Store.alloc store [| 1; 2; 3 |]))

let test_cache_hits () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 ~cache_blocks:2 () in
  let id1 = Emio.Store.alloc store [| 1 |] in
  let id2 = Emio.Store.alloc store [| 2 |] in
  let id3 = Emio.Store.alloc store [| 3 |] in
  Emio.Io_stats.reset stats;
  (* id2 and id3 are resident (capacity 2, id1 was evicted) *)
  ignore (Emio.Store.read store id3);
  ignore (Emio.Store.read store id2);
  check "two hits" 2 (Emio.Io_stats.cache_hits stats);
  check "no reads charged" 0 (Emio.Io_stats.reads stats);
  ignore (Emio.Store.read store id1);
  check "miss charged" 1 (Emio.Io_stats.reads stats);
  Emio.Store.drop_cache store;
  Emio.Io_stats.reset stats;
  ignore (Emio.Store.read store id1);
  check "cold after drop_cache" 1 (Emio.Io_stats.reads stats)

let test_cold_cache_every_access_charged () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let id = Emio.Store.alloc store [| 1 |] in
  Emio.Io_stats.reset stats;
  for _ = 1 to 5 do
    ignore (Emio.Store.read store id)
  done;
  check "five reads, no cache" 5 (Emio.Io_stats.reads stats)

(* The simulator charges model I/Os only: the physical-device counters
   (bytes, evictions) stay zero, so model-level experiments are not
   polluted.  reset must clear them too (they are fed by the file
   backend). *)
let test_stats_physical_counters () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 ~cache_blocks:1 () in
  let id1 = Emio.Store.alloc store [| 1 |] in
  let id2 = Emio.Store.alloc store [| 2 |] in
  ignore (Emio.Store.read store id1);
  ignore (Emio.Store.read store id2);
  check "simulator writes no bytes" 0 (Emio.Io_stats.bytes_written stats);
  check "simulator reads no bytes" 0 (Emio.Io_stats.bytes_read stats);
  check "simulator records no evictions" 0 (Emio.Io_stats.evictions stats);
  Emio.Io_stats.record_bytes_read stats 4096;
  Emio.Io_stats.record_bytes_written stats 8192;
  Emio.Io_stats.record_eviction stats;
  check "bytes read recorded" 4096 (Emio.Io_stats.bytes_read stats);
  check "bytes written recorded" 8192 (Emio.Io_stats.bytes_written stats);
  check "eviction recorded" 1 (Emio.Io_stats.evictions stats);
  Emio.Io_stats.reset stats;
  check "reset clears bytes read" 0 (Emio.Io_stats.bytes_read stats);
  check "reset clears bytes written" 0 (Emio.Io_stats.bytes_written stats);
  check "reset clears evictions" 0 (Emio.Io_stats.evictions stats);
  check "reset clears reads" 0 (Emio.Io_stats.reads stats)

let test_lru_eviction_order () =
  let lru = Emio.Lru.create ~capacity:2 in
  Alcotest.(check bool) "miss a" false (Emio.Lru.touch lru 1);
  Alcotest.(check bool) "miss b" false (Emio.Lru.touch lru 2);
  Alcotest.(check bool) "hit a" true (Emio.Lru.touch lru 1);
  (* 2 is now LRU; inserting 3 evicts it *)
  Alcotest.(check bool) "miss c" false (Emio.Lru.touch lru 3);
  Alcotest.(check bool) "2 evicted" false (Emio.Lru.mem lru 2);
  Alcotest.(check bool) "1 kept" true (Emio.Lru.mem lru 1)

let test_lru_zero_capacity () =
  let lru = Emio.Lru.create ~capacity:0 in
  Alcotest.(check bool) "never hits" false (Emio.Lru.touch lru 1);
  Alcotest.(check bool) "never hits twice" false (Emio.Lru.touch lru 1);
  Alcotest.(check int) "empty" 0 (Emio.Lru.size lru)

let test_lru_remove () =
  let lru = Emio.Lru.create ~capacity:3 in
  ignore (Emio.Lru.touch lru 1);
  ignore (Emio.Lru.touch lru 2);
  Emio.Lru.remove lru 1;
  Alcotest.(check bool) "removed" false (Emio.Lru.mem lru 1);
  Alcotest.(check int) "size" 1 (Emio.Lru.size lru)

let test_run_roundtrip () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:3 () in
  let items = Array.init 10 (fun i -> i * i) in
  let run = Emio.Run.of_array store items in
  check "length" 10 (Emio.Run.length run);
  check "blocks" 4 (Emio.Run.block_count run);
  Alcotest.(check (array int)) "roundtrip" items (Emio.Run.to_array run);
  Emio.Io_stats.reset stats;
  let sum = Emio.Run.fold ( + ) 0 run in
  check "fold result" (Array.fold_left ( + ) 0 items) sum;
  check "scan cost = ceil(10/3)" 4 (Emio.Io_stats.reads stats)

let test_run_empty () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:3 () in
  let run = Emio.Run.empty store in
  check "length" 0 (Emio.Run.length run);
  Alcotest.(check (array int)) "empty array" [||] (Emio.Run.to_array run)

let test_run_read_range () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let run = Emio.Run.of_array store (Array.init 14 Fun.id) in
  Emio.Io_stats.reset stats;
  Alcotest.(check (array int)) "inside one block" [| 1; 2 |]
    (Emio.Run.read_range run ~pos:1 ~len:2);
  check "one read" 1 (Emio.Io_stats.reads stats);
  Emio.Io_stats.reset stats;
  Alcotest.(check (array int)) "spanning blocks" [| 3; 4; 5; 6; 7; 8 |]
    (Emio.Run.read_range run ~pos:3 ~len:6);
  check "three reads" 3 (Emio.Io_stats.reads stats);
  Alcotest.(check (array int)) "suffix into partial block" [| 12; 13 |]
    (Emio.Run.read_range run ~pos:12 ~len:2);
  Alcotest.(check (array int)) "empty" [||]
    (Emio.Run.read_range run ~pos:5 ~len:0);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Run.read_range: out of bounds") (fun () ->
      ignore (Emio.Run.read_range run ~pos:10 ~len:5))

let test_io_stats_checkpoint () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:2 () in
  let id = Emio.Store.alloc store [| 1 |] in
  let mark = Emio.Io_stats.checkpoint stats in
  ignore (Emio.Store.read store id);
  ignore (Emio.Store.read store id);
  check "span measures two I/Os" 2 (Emio.Io_stats.total stats - mark)

let test_run_prefix_scan () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:2 () in
  let run = Emio.Run.of_array store (Array.init 10 Fun.id) in
  Emio.Io_stats.reset stats;
  let seen = ref 0 in
  Emio.Run.iter_prefix_blocks
    (fun block ->
      seen := !seen + Array.length block;
      !seen < 4)
    run;
  check "stopped after two blocks" 4 !seen;
  check "only two reads charged" 2 (Emio.Io_stats.reads stats)

let sort_via_ext ?(block_size = 4) ?(memory_items = 16) items =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size () in
  let run = Emio.Run.of_array store items in
  let sorted = Emio.Ext_sort.sort ~cmp:compare ~memory_items store run in
  Emio.Run.to_array sorted

let test_ext_sort_basic () =
  let items = [| 5; 3; 9; 1; 4; 8; 2; 7; 6; 0 |] in
  let expect = Array.copy items in
  Array.sort compare expect;
  Alcotest.(check (array int)) "sorted" expect (sort_via_ext items)

let test_ext_sort_multipass () =
  (* memory of 8 items, blocks of 4: fan-in 2 forces several passes *)
  let items = Array.init 100 (fun i -> (i * 37) mod 100) in
  let expect = Array.copy items in
  Array.sort compare expect;
  Alcotest.(check (array int))
    "sorted" expect
    (sort_via_ext ~block_size:4 ~memory_items:8 items)

let test_ext_sort_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (sort_via_ext [||]);
  Alcotest.(check (array int)) "single" [| 42 |] (sort_via_ext [| 42 |])

let test_ext_sort_rejects_tiny_memory () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:8 () in
  let run = Emio.Run.of_array store [| 1 |] in
  Alcotest.check_raises "tiny memory"
    (Invalid_argument "Ext_sort.sort: memory must hold at least two blocks")
    (fun () -> ignore (Emio.Ext_sort.sort ~cmp:compare ~memory_items:8 store run))

let prop_ext_sort =
  QCheck.Test.make ~name:"ext_sort sorts like Array.sort" ~count:200
    QCheck.(array_of_size Gen.(0 -- 200) int)
    (fun items ->
      let expect = Array.copy items in
      Array.sort compare expect;
      sort_via_ext ~block_size:3 ~memory_items:9 items = expect)

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"lru size <= capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, accesses) ->
      let lru = Emio.Lru.create ~capacity:cap in
      List.iter (fun id -> ignore (Emio.Lru.touch lru id)) accesses;
      Emio.Lru.size lru <= cap)

let () =
  Alcotest.run "emio"
    [
      ( "store",
        [
          Alcotest.test_case "io counting" `Quick test_store_counts;
          Alcotest.test_case "oversized rejected" `Quick
            test_store_rejects_oversized;
          Alcotest.test_case "cache hits" `Quick test_cache_hits;
          Alcotest.test_case "physical counters" `Quick
            test_stats_physical_counters;
          Alcotest.test_case "cold cache" `Quick
            test_cold_cache_every_access_charged;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
        ] );
      ( "run",
        [
          Alcotest.test_case "roundtrip" `Quick test_run_roundtrip;
          Alcotest.test_case "empty" `Quick test_run_empty;
          Alcotest.test_case "prefix scan" `Quick test_run_prefix_scan;
          Alcotest.test_case "read_range" `Quick test_run_read_range;
          Alcotest.test_case "stats checkpoint" `Quick
            test_io_stats_checkpoint;
        ] );
      ( "ext_sort",
        [
          Alcotest.test_case "basic" `Quick test_ext_sort_basic;
          Alcotest.test_case "multipass" `Quick test_ext_sort_multipass;
          Alcotest.test_case "empty and single" `Quick
            test_ext_sort_empty_and_single;
          Alcotest.test_case "tiny memory rejected" `Quick
            test_ext_sort_rejects_tiny_memory;
          QCheck_alcotest.to_alcotest prop_ext_sort;
        ] );
    ]
