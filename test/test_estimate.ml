(* Index.estimate across the registry (satellite of the shard PR):
   every registered structure must return a finite, non-negative
   planning estimate for random valid queries at dims 2 and 3 —
   nothing exercised [estimate] before this suite. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Shard = Lcsearch_index.Shard

(* One small structure per (module, dim), built once and shared by
   every qcheck iteration: estimate is a pure planning hint, so the
   property only needs fresh queries, not fresh builds. *)
let built =
  List.concat_map
    (fun (module M : Index.S) ->
      List.filter_map
        (fun dim ->
          if not (List.mem dim M.dims) then None
          else begin
            let rng = Workload.rng (77 + dim + Hashtbl.hash M.name mod 53) in
            let ds =
              Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:128
                (module M : Index.S)
            in
            let t =
              M.build ~params:Index.default_params
                ~stats:(Emio.Io_stats.create ())
                ds
            in
            Some (M.name, dim, Index.Instance ((module M), t))
          end)
        [ 2; 3 ])
    (Registry.all ())

(* Random valid query at [dim]: d-1 coefficients within the builders'
   clip box (the workload generators clamp to ±9.9) and an intercept
   spanning well past the coordinate ranges. *)
let gen_query dim =
  QCheck.Gen.(
    map2
      (fun a0 a -> { Index.a0; a = Array.of_list a })
      (float_range (-500.) 500.)
      (list_repeat (dim - 1) (float_range (-9.9) 9.9)))

let finite_nonneg name dim inst =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "estimate %s d=%d finite and >= 0" name dim)
    (QCheck.make (gen_query dim))
    (fun q ->
      let e = Index.estimate inst q in
      Float.is_finite e && e >= 0.)

let registry_props =
  List.map
    (fun (name, dim, inst) ->
      QCheck_alcotest.to_alcotest (finite_nonneg name dim inst))
    built

(* The sharded wrapper keeps the property (its estimate sums over
   non-pruned shards, which can legitimately be 0 on a miss). *)
let sharded_props =
  List.map
    (fun (inner, dim) ->
      let (module M : Index.S) = Registry.find_exn inner in
      let (module Sh : Index.S) =
        Shard.make ~inner:(module M) ~shards:4 ~partition:Shard.Str ()
      in
      let rng = Workload.rng (177 + dim) in
      let ds =
        Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:128
          (module Sh : Index.S)
      in
      let t =
        Sh.build ~params:Index.default_params
          ~stats:(Emio.Io_stats.create ())
          ds
      in
      QCheck_alcotest.to_alcotest
        (finite_nonneg (inner ^ " sharded") dim
           (Index.Instance ((module Sh), t))))
    [ ("h2", 2); ("ptree", 3) ]

let () =
  Alcotest.run "estimate"
    [ ("registry", registry_props); ("sharded", sharded_props) ]
