(* Degenerate-input tests across the library: collinear and duplicate
   points, extreme queries, tiny inputs — the inputs a downstream user
   will eventually feed it. *)

open Geom

let stats () = Emio.Io_stats.create ()

(* --- Halfspace2d ------------------------------------------------------- *)

let test_h2_collinear_points () =
  (* every point on y = x: the dual lines form a pencil through a
     single dual point *)
  let points = Array.init 200 (fun i -> Point2.make (float_of_int i) (float_of_int i)) in
  let t = Core.Halfspace2d.build ~stats:(stats ()) ~block_size:8 points in
  Alcotest.(check int) "above the diagonal: everything" 200
    (Core.Halfspace2d.query_count t ~slope:1. ~icept:0.5);
  Alcotest.(check int) "below the diagonal: nothing" 0
    (Core.Halfspace2d.query_count t ~slope:1. ~icept:(-0.5));
  Alcotest.(check int) "half" 100
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:99.5)

let test_h2_same_x_points () =
  (* same x-coordinate: all dual lines are parallel *)
  let points = Array.init 150 (fun i -> Point2.make 3. (float_of_int i)) in
  let t = Core.Halfspace2d.build ~stats:(stats ()) ~block_size:8 points in
  Alcotest.(check int) "cut at 50" 50
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:49.5)

let test_h2_all_identical () =
  let points = Array.make 300 (Point2.make 1. 2.) in
  let t = Core.Halfspace2d.build ~stats:(stats ()) ~block_size:8 points in
  Alcotest.(check int) "all duplicates in" 300
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:2.5);
  Alcotest.(check int) "all duplicates out" 0
    (Core.Halfspace2d.query_count t ~slope:0. ~icept:1.5)

let test_h2_extreme_query_slopes () =
  let rng = Workload.rng 8 in
  let points = Workload.uniform2 rng ~n:500 ~range:10. in
  List.iter
    (fun slope ->
      let got = Core.Halfspace2d.query_count
          (Core.Halfspace2d.build ~stats:(stats ()) ~block_size:8 points)
          ~slope ~icept:0. in
      let want =
        Array.fold_left
          (fun acc p ->
            if
              Point2.y p <= (slope *. Point2.x p) +. Eps.eps
            then acc + 1
            else acc)
          0 points
      in
      Alcotest.(check int) (Printf.sprintf "slope %g" slope) want got)
    [ 1e4; -1e4; 0.; 1e-7 ]

(* --- Partition trees --------------------------------------------------- *)

let test_ptree_duplicate_points () =
  let points = Array.append
      (Array.make 100 [| 1.; 1. |])
      (Array.make 100 [| 2.; 2. |])
  in
  let t = Core.Partition_tree.build ~stats:(stats ()) ~block_size:4 ~dim:2 points in
  Alcotest.(check int) "split between clusters" 100
    (List.length (Core.Partition_tree.query_halfspace t ~a0:1.5 ~a:[| 0. |]));
  Alcotest.(check int) "everything" 200
    (List.length (Core.Partition_tree.query_halfspace t ~a0:3. ~a:[| 0. |]))

let test_ptree_1d_like_degenerate () =
  (* all points on a vertical segment: zero spread in x *)
  let points = Array.init 120 (fun i -> [| 5.; float_of_int i |]) in
  let t = Core.Partition_tree.build ~stats:(stats ()) ~block_size:4 ~dim:2 points in
  Alcotest.(check int) "cut" 60
    (List.length (Core.Partition_tree.query_halfspace t ~a0:59.5 ~a:[| 0. |]))

let test_ptree_constant_constraint () =
  let rng = Workload.rng 9 in
  let points = Workload.uniform_d rng ~n:100 ~dim:3 ~range:5. in
  let t = Core.Partition_tree.build ~stats:(stats ()) ~block_size:4 ~dim:3 points in
  (* constraint ignoring all but the last coordinate *)
  Alcotest.(check int) "z <= 100 catches all" 100
    (List.length (Core.Partition_tree.query_halfspace t ~a0:100. ~a:[| 0.; 0. |]))

let test_shallow_tree_tiny () =
  let t =
    Core.Shallow_tree.build ~stats:(stats ()) ~block_size:8 ~dim:2
      [| [| 0.; 0. |]; [| 1.; 1. |] |]
  in
  Alcotest.(check int) "one of two" 1
    (List.length (Core.Shallow_tree.query_halfspace t ~a0:0.5 ~a:[| 0. |]))

(* --- B-tree ------------------------------------------------------------ *)

let test_btree_all_equal_keys_spanning_leaves () =
  let stats = Emio.Io_stats.create () in
  let entries = Array.init 100 (fun i -> (7, i)) in
  let t = Xbtree.Btree.bulk_load ~stats ~block_size:4 ~cmp:compare entries in
  Alcotest.(check bool) "height > 1" true (Xbtree.Btree.height t > 1);
  Alcotest.(check int) "all hundred" 100
    (List.length (Xbtree.Btree.range t ~lo:7 ~hi:7));
  Alcotest.(check int) "iter_range agrees" 100
    (let c = ref 0 in
     Xbtree.Btree.iter_range t ~lo:0 ~hi:10 (fun _ _ -> incr c);
     !c)

(* --- Knn / Disk -------------------------------------------------------- *)

let test_knn_duplicates () =
  let points =
    Array.append (Array.make 5 (Point2.make 0. 0.)) [| Point2.make 10. 0. |]
  in
  let t =
    Core.Knn.build ~stats:(stats ()) ~block_size:4
      ~clip:(-20., -20., 20., 20.) points
  in
  let nn = Core.Knn.nearest t (Point2.make 0.1 0.) ~k:5 in
  Alcotest.(check int) "five results" 5 (List.length nn);
  List.iter
    (fun (p, d) ->
      Alcotest.(check bool) "all are the duplicated point" true
        (Point2.equal p (Point2.make 0. 0.));
      Alcotest.(check (float 1e-6)) "distance" 0.1 d)
    nn

let test_knn_k_zero () =
  let points = [| Point2.make 0. 0. |] in
  let t =
    Core.Knn.build ~stats:(stats ()) ~block_size:4
      ~clip:(-20., -20., 20., 20.) points
  in
  Alcotest.(check int) "k=0" 0
    (List.length (Core.Knn.nearest t (Point2.make 1. 1.) ~k:0))

(* --- Seg_intersect: collinear and touching ----------------------------- *)

let test_segments_collinear_disjoint () =
  let segments =
    [|
      (Point2.make 0. 0., Point2.make 1. 1.);
      (Point2.make 5. 5., Point2.make 6. 6.);
    |]
  in
  let t = Core.Seg_intersect.build ~stats:(stats ()) ~block_size:4 segments in
  (* a collinear probe overlapping only the first segment *)
  Alcotest.(check (list int)) "collinear overlap picks one" [ 0 ]
    (Core.Seg_intersect.query t (Point2.make 0.5 0.5) (Point2.make 2. 2.));
  Alcotest.(check (list int)) "collinear gap reports none" []
    (Core.Seg_intersect.query t (Point2.make 2. 2.) (Point2.make 4. 4.))

let test_segments_shared_endpoint () =
  let segments =
    [|
      (Point2.make 0. 0., Point2.make 5. 5.);
      (Point2.make 5. 5., Point2.make 10. 0.);
    |]
  in
  let t = Core.Seg_intersect.build ~stats:(stats ()) ~block_size:4 segments in
  (* probe through the shared apex *)
  let got = Core.Seg_intersect.query t (Point2.make 5. 0.) (Point2.make 5. 9.) in
  Alcotest.(check (list int)) "touches both" [ 0; 1 ] got

(* --- Dynamized partition tree: interleaved churn ------------------------ *)

let test_dynamic_churn () =
  let module Index = Lcsearch_index.Index in
  let (module L : Index.S) =
    Lcsearch_index.Lsm.make ~memtable_cap:8
      ~inner:(Lcsearch_index.Registry.find_exn "ptree")
      ()
  in
  let t =
    L.build
      ~params:{ Index.default_params with block_size = 4 }
      ~stats:(stats ()) (Index.Pts2 [||])
  in
  let inst = Index.Instance ((module L), t) in
  let u = Option.get (Index.updater inst) in
  let rng = Random.State.make [| 17 |] in
  let live = ref [] in
  for round = 1 to 500 do
    let h =
      u.Index.u_insert
        [| Random.State.float rng 10.; Random.State.float rng 10. |]
    in
    live := h :: !live;
    if round mod 3 = 0 then begin
      match !live with
      | h :: rest ->
          ignore (u.Index.u_delete h);
          live := rest
      | [] -> ()
    end
  done;
  Alcotest.(check int) "live count" (List.length !live) (u.Index.u_live ());
  Alcotest.(check int) "query everything" (List.length !live)
    (Index.query_count inst { Index.a0 = 100.; a = [| 0. |] })

(* --- envelopes with heavy slope collisions ----------------------------- *)

let test_envelope_many_parallel () =
  let lines =
    Array.init 50 (fun i ->
        Line2.make ~slope:(float_of_int (i mod 5)) ~icept:(float_of_int i))
  in
  let env = Envelope2.build Envelope2.Lower lines in
  (* exactly 5 distinct slopes can appear *)
  Alcotest.(check bool) "at most 5 segments" true (Envelope2.size env <= 5);
  (* lowest parallel representative is kept: intercepts 0..4 *)
  Alcotest.(check (float 1e-9)) "at x=0" 0. (Envelope2.eval env 0.)

let () =
  Alcotest.run "edge_cases"
    [
      ( "halfspace2d",
        [
          Alcotest.test_case "collinear points" `Quick test_h2_collinear_points;
          Alcotest.test_case "same-x points" `Quick test_h2_same_x_points;
          Alcotest.test_case "all identical" `Quick test_h2_all_identical;
          Alcotest.test_case "extreme slopes" `Quick
            test_h2_extreme_query_slopes;
        ] );
      ( "partition",
        [
          Alcotest.test_case "duplicate points" `Quick
            test_ptree_duplicate_points;
          Alcotest.test_case "degenerate spread" `Quick
            test_ptree_1d_like_degenerate;
          Alcotest.test_case "constant constraint" `Quick
            test_ptree_constant_constraint;
          Alcotest.test_case "tiny shallow tree" `Quick test_shallow_tree_tiny;
        ] );
      ( "btree",
        [
          Alcotest.test_case "equal keys across leaves" `Quick
            test_btree_all_equal_keys_spanning_leaves;
        ] );
      ( "knn",
        [
          Alcotest.test_case "duplicates" `Quick test_knn_duplicates;
          Alcotest.test_case "k = 0" `Quick test_knn_k_zero;
        ] );
      ( "segments",
        [
          Alcotest.test_case "collinear disjoint" `Quick
            test_segments_collinear_disjoint;
          Alcotest.test_case "shared endpoint" `Quick
            test_segments_shared_endpoint;
        ] );
      ( "dynamic",
        [ Alcotest.test_case "churn" `Quick test_dynamic_churn ] );
      ( "envelope",
        [
          Alcotest.test_case "many parallel lines" `Quick
            test_envelope_many_parallel;
        ] );
    ]
