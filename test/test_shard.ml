(* The sharded scatter-gather layer: bit-equality with the unsharded
   structure for K in {1, 2, 4, 8} under both partitioners, build/query
   accounting that is deterministic across runs and domain counts, and
   the sharded directory snapshot format (roundtrip, corrupted
   manifest, corrupted shard file, missing shard file). *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Shard = Lcsearch_index.Shard
module Query_engine = Lcsearch_index.Query_engine

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let temp_dir () =
  let path = Filename.temp_file "lcsearch_shard" ".snapdir" in
  Sys.remove path;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  at_exit (fun () -> try rm path with Sys_error _ -> ());
  path

let build_params = Index.default_params

let make_case ~inner ~dim ~kind ~n =
  let (module M : Index.S) = Registry.find_exn inner in
  let rng = Workload.rng (4242 + (31 * dim) + Hashtbl.hash inner mod 89) in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let qs = Workloads.queries rng ds ~fraction:0.05 ~count:4 in
  ((module M : Index.S), ds, qs)

let reported_ids (type a) (module M : Index.S with type t = a) (t : a) q =
  let r = Emio.Reporter.create () in
  let c = M.query_into t q r in
  (c, List.sort compare (Emio.Reporter.to_list r))

(* ---- conformance: sharded results bit-equal to unsharded ---- *)

let conformance_case ~inner ~dim ~kind ~partition ~shards () =
  let (module M : Index.S), ds, qs = make_case ~inner ~dim ~kind ~n:512 in
  let plain =
    M.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds
  in
  let (module Sh : Index.S) =
    Shard.make ~build_domains:2 ~inner:(module M) ~shards ~partition ()
  in
  Alcotest.(check string) "name is the inner's" M.name Sh.name;
  Alcotest.(check bool) "reports_ids matches" M.reports_ids Sh.reports_ids;
  let sharded =
    Sh.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds
  in
  Alcotest.(check bool)
    "counters expose the shard count" true
    (List.assoc_opt "shards" (Sh.counters sharded) <> None);
  List.iteri
    (fun i q ->
      let label fmt =
        Printf.sprintf "%s d=%d %s K=%d %s q%d: %s" inner dim
          (Workloads.kind_name kind) shards
          (Shard.partition_name partition)
          i fmt
      in
      let want_rows = sorted_rows (M.query plain q) in
      Alcotest.(check bool)
        (label "rows") true
        (sorted_rows (Sh.query sharded q) = want_rows);
      Alcotest.(check int)
        (label "count") (M.query_count plain q)
        (Sh.query_count sharded q);
      let want_c, want_ids = reported_ids (module M) plain q in
      let got_c, got_ids = reported_ids (module Sh) sharded q in
      Alcotest.(check int) (label "query_into count") want_c got_c;
      Alcotest.(check bool) (label "global ids") true (want_ids = got_ids);
      let est = Sh.estimate sharded q in
      Alcotest.(check bool)
        (label "estimate finite and non-negative")
        true
        (Float.is_finite est && est >= 0.))
    qs

(* ---- accounting: summed per-shard I/Os deterministic across runs
   and domain counts ---- *)

let query_costs (type a) (module M : Index.S with type t = a) (t : a) qs =
  List.map
    (fun q ->
      let ctx = Emio.Cost_ctx.create () in
      let c =
        Emio.Cost_ctx.with_ctx ctx (fun () -> M.query_count t q)
      in
      (c, Emio.Cost_ctx.reads ctx, Emio.Cost_ctx.writes ctx))
    qs

let test_cost_determinism () =
  let (module M : Index.S), ds, qs =
    make_case ~inner:"h2" ~dim:2 ~kind:Workloads.Uniform ~n:512
  in
  let runs =
    List.map
      (fun build_domains ->
        let (module Sh : Index.S) =
          Shard.make ~build_domains ~inner:(module M) ~shards:4
            ~partition:Shard.Str ()
        in
        let stats = Emio.Io_stats.create () in
        let ctx = Emio.Cost_ctx.create () in
        let t =
          Emio.Cost_ctx.with_ctx ctx (fun () ->
              Sh.build ~params:build_params ~stats ds)
        in
        ( Emio.Io_stats.total stats,
          Emio.Cost_ctx.total ctx,
          query_costs (module Sh) t qs ))
      [ 1; 2; 4 ]
  in
  match runs with
  | first :: rest ->
      let stats_total, ctx_total, costs = first in
      Alcotest.(check bool)
        "build charges the caller's Cost_ctx like its Io_stats" true
        (stats_total = ctx_total && stats_total > 0);
      List.iteri
        (fun i (st, ct, cs) ->
          Alcotest.(check int)
            (Printf.sprintf "run %d: build stats total" (i + 1))
            stats_total st;
          Alcotest.(check int)
            (Printf.sprintf "run %d: build ctx total" (i + 1))
            ctx_total ct;
          Alcotest.(check bool)
            (Printf.sprintf "run %d: per-query costs identical" (i + 1))
            true (cs = costs))
        rest
  | [] -> assert false

(* ---- STR pruning actually skips shards on a selective query ---- *)

let test_str_pruning () =
  let (module M : Index.S), ds, _ =
    make_case ~inner:"h2" ~dim:2 ~kind:Workloads.Uniform ~n:1024
  in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:8 ~partition:Shard.Str ()
  in
  let t = Sh.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  (* y <= x - 1000: empty answer, every tile lies above the line *)
  ignore (Sh.query_count t { Index.a0 = -1000.; a = [| 1. |] } : int);
  let pruned = List.assoc "last_pruned" (Sh.counters t) in
  Alcotest.(check int) "all 8 tiles pruned on an empty halfplane" 8 pruned;
  ignore (Sh.query_count t { Index.a0 = 1000.; a = [| 1. |] } : int);
  let pruned = List.assoc "last_pruned" (Sh.counters t) in
  Alcotest.(check int) "no tile pruned on an all-points halfplane" 0 pruned

(* ---- sharded snapshots ---- *)

let save_sharded (type a) (module Sh : Index.S with type t = a) (t : a) path =
  let ops = Option.get Sh.snapshot in
  ops.Index.save t ~path ~meta:"s=test;n=512;b=64;w=uniform;seed=0;d=2"
    ~page_size:None;
  ops

let roundtrip_case ~inner ~dim ~partition () =
  let (module M : Index.S), ds, qs =
    make_case ~inner ~dim ~kind:Workloads.Uniform ~n:512
  in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:4 ~partition ()
  in
  let t = Sh.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let path = temp_dir () in
  ignore (save_sharded (module Sh) t path : _ Index.snapshot_ops);
  Alcotest.(check bool) "is_sharded_path" true (Shard.is_sharded_path path);
  (match Shard.read_manifest path with
  | Error e ->
      Alcotest.failf "manifest unreadable: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok m ->
      Alcotest.(check int) "manifest shard count" 4 m.Shard.shards;
      Alcotest.(check int) "manifest total points" 512 m.Shard.total;
      Alcotest.(check bool)
        "manifest partition" true
        (m.Shard.partition = partition));
  match Shard.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
  | Error e ->
      Alcotest.failf "open_snapshot failed: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok (inst, info, _m) ->
      Alcotest.(check string)
        "aggregated info kind" Shard.sharded_kind info.Diskstore.Snapshot.kind;
      Alcotest.(check string) "instance name" M.name (Index.name inst);
      List.iteri
        (fun i q ->
          let label fmt =
            Printf.sprintf "%s d=%d %s reopened q%d: %s" inner dim
              (Shard.partition_name partition)
              i fmt
          in
          Alcotest.(check bool)
            (label "rows") true
            (sorted_rows (Index.query inst q) = sorted_rows (Sh.query t q));
          Alcotest.(check int)
            (label "count") (Sh.query_count t q)
            (Index.query_count inst q);
          let (Index.Instance ((module L), lt)) = inst in
          let want_c, want_ids = reported_ids (module Sh) t q in
          let got_c, got_ids = reported_ids (module L) lt q in
          Alcotest.(check int) (label "query_into count") want_c got_c;
          Alcotest.(check bool) (label "global ids") true (want_ids = got_ids))
        qs

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = min pos (len - 1) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let build_saved_h2 () =
  let (module M : Index.S), ds, _ =
    make_case ~inner:"h2" ~dim:2 ~kind:Workloads.Uniform ~n:256
  in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:4 ~partition:Shard.Str ()
  in
  let t = Sh.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let path = temp_dir () in
  ignore (save_sharded (module Sh) t path : _ Index.snapshot_ops);
  path

let expect_open_error label path pred =
  match Shard.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
  | Ok _ -> Alcotest.failf "%s: open_snapshot accepted damaged snapshot" label
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" label (Diskstore.Snapshot.error_to_string e))
        true (pred e)

let test_corrupted_manifest () =
  let path = build_saved_h2 () in
  (* flip a byte inside the manifest payload (past the 4-byte CRC) *)
  flip_byte (Filename.concat path "MANIFEST") 32;
  expect_open_error "corrupted manifest" path (function
    | Diskstore.Snapshot.Bad_section_crc _ | Diskstore.Snapshot.Bad_payload _
      ->
        true
    | _ -> false)

let test_missing_shard_file () =
  let path = build_saved_h2 () in
  Sys.remove (Filename.concat path "shard-002.snap");
  expect_open_error "missing shard file" path (function
    | Diskstore.Snapshot.Bad_header msg ->
        let sub = "shard-002.snap" in
        let ls = String.length msg and lsub = String.length sub in
        let rec go i =
          i + lsub <= ls && (String.sub msg i lsub = sub || go (i + 1))
        in
        go 0
    | _ -> false)

let test_corrupted_shard_file () =
  let path = build_saved_h2 () in
  (* damage a shard body: the manifest's whole-file CRC must catch it
     before the inner loader even runs *)
  flip_byte (Filename.concat path "shard-001.snap") 9000;
  expect_open_error "corrupted shard file" path (function
    | Diskstore.Snapshot.Bad_section_crc { section } ->
        String.equal section "shard-001.snap"
    | _ -> false)

let test_non_sharded_path () =
  Alcotest.(check bool)
    "regular file is not sharded" false
    (Shard.is_sharded_path "dune");
  Alcotest.(check bool)
    "missing path is not sharded" false
    (Shard.is_sharded_path "/nonexistent/lcsearch");
  match Shard.read_manifest (Filename.get_temp_dir_name ()) with
  | Error (Diskstore.Snapshot.Bad_header _) -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "read_manifest on a plain directory must fail"

(* ---- batch engine drives a sharded instance like any other ---- *)

let test_batch_engine () =
  let (module M : Index.S), ds, qs =
    make_case ~inner:"ptree" ~dim:2 ~kind:Workloads.Uniform ~n:512
  in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:4 ~partition:Shard.Hash ()
  in
  let t = Sh.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let inst = Index.Instance ((module Sh), t) in
  let qs = Array.of_list qs in
  let seq =
    Emio.Store.with_cache_split ~shards:4 ~domains:1 (fun () ->
        Query_engine.run_batch_array ~domains:1 inst qs)
  in
  let par = Query_engine.run_batch_array ~domains:2 inst qs in
  Array.iteri
    (fun i (r1 : Query_engine.cost) ->
      let r2 : Query_engine.cost = par.(i) in
      Alcotest.(check int)
        (Printf.sprintf "q%d: batch result domains 1 = 2" i)
        r1.Query_engine.result r2.Query_engine.result;
      Alcotest.(check int)
        (Printf.sprintf "q%d: batch reads domains 1 = 2" i)
        r1.Query_engine.reads r2.Query_engine.reads)
    seq

let conformance_tests =
  List.concat_map
    (fun (inner, dim) ->
      List.concat_map
        (fun partition ->
          List.concat_map
            (fun shards ->
              List.map
                (fun kind ->
                  Alcotest.test_case
                    (Printf.sprintf "%s d=%d K=%d %s %s" inner dim shards
                       (Shard.partition_name partition)
                       (Workloads.kind_name kind))
                    `Quick
                    (conformance_case ~inner ~dim ~kind ~partition ~shards))
                [ Workloads.Uniform; Workloads.Diagonal ])
            [ 1; 2; 4; 8 ])
        [ Shard.Str; Shard.Hash ])
    [ ("h2", 2); ("ptree", 3); ("rtree", 2); ("h3", 3) ]

let () =
  Alcotest.run "shard"
    [
      ("conformance", conformance_tests);
      ( "accounting",
        [
          Alcotest.test_case "deterministic across runs and domains" `Quick
            test_cost_determinism;
          Alcotest.test_case "STR tile pruning" `Quick test_str_pruning;
          Alcotest.test_case "batch engine" `Quick test_batch_engine;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip h2 str" `Quick
            (roundtrip_case ~inner:"h2" ~dim:2 ~partition:Shard.Str);
          Alcotest.test_case "roundtrip h2 hash" `Quick
            (roundtrip_case ~inner:"h2" ~dim:2 ~partition:Shard.Hash);
          Alcotest.test_case "roundtrip ptree str" `Quick
            (roundtrip_case ~inner:"ptree" ~dim:3 ~partition:Shard.Str);
          Alcotest.test_case "roundtrip rtree str" `Quick
            (roundtrip_case ~inner:"rtree" ~dim:2 ~partition:Shard.Str);
          Alcotest.test_case "corrupted manifest" `Quick
            test_corrupted_manifest;
          Alcotest.test_case "missing shard file" `Quick
            test_missing_shard_file;
          Alcotest.test_case "corrupted shard file" `Quick
            test_corrupted_shard_file;
          Alcotest.test_case "non-sharded paths" `Quick test_non_sharded_path;
        ] );
    ]
