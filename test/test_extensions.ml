(* Tests for the §7 open-problem extensions: the dynamized partition
   tree (remark (iii) / open problem 1, now Lsm over ptree) and
   segment intersection searching (open problem 2). *)

open Geom

(* --- dynamized partition tree: Lsm over ptree --------------------------- *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Lsm = Lcsearch_index.Lsm

(* An empty dynamized §5 partition tree, ready for churn: the shape
   Core.Dynamic_tree used to provide as a one-off, now spelled through
   the generic LSM layer (see lib/index/lsm.mli for the §5 remark
   (iii) analysis). *)
let dyn_ptree ?(memtable_cap = 8) ?(block_size = 4) () =
  let (module L : Index.S) =
    Lsm.make ~memtable_cap ~inner:(Registry.find_exn "ptree") ()
  in
  let t =
    L.build
      ~params:{ Index.default_params with block_size }
      ~stats:(Emio.Io_stats.create ())
      (Index.Pts2 [||])
  in
  let inst = Index.Instance ((module L), t) in
  (inst, Option.get (Index.updater inst))

(* ptree reports ids, so the dynamized wrapper reports stable handles
   through query_into. *)
let query_handles inst ~a0 ~a =
  let r = Emio.Reporter.create () in
  ignore (Index.query_into inst { Index.a0; a } r : int);
  List.sort compare (Emio.Reporter.to_list r)

let counter inst key =
  Option.value ~default:0 (List.assoc_opt key (Index.counters inst))

let dyn_oracle live ~a0 ~a =
  let c = Partition.Cells.constr_of_halfspace ~dim:2 ~a0 ~a in
  Hashtbl.fold
    (fun h p acc -> if Partition.Cells.satisfies c p then h :: acc else acc)
    live []
  |> List.sort compare

let test_dynamic_basic () =
  let inst, u = dyn_ptree () in
  let h1 = u.Index.u_insert [| 0.; 0. |] in
  let _h2 = u.Index.u_insert [| 0.; 10. |] in
  Alcotest.(check int) "two live" 2 (u.Index.u_live ());
  Alcotest.(check (list int)) "only the low point" [ h1 ]
    (query_handles inst ~a0:5. ~a:[| 0. |]);
  Alcotest.(check bool) "delete" true (u.Index.u_delete h1);
  Alcotest.(check bool) "double delete" false (u.Index.u_delete h1);
  Alcotest.(check (list int)) "gone" []
    (query_handles inst ~a0:5. ~a:[| 0. |])

let prop_dynamic_matches_oracle =
  QCheck.Test.make ~count:60 ~name:"dynamized ptree = mutable-oracle replay"
    (* a random script of inserts (Some (x, y)) / deletes (None, which
       removes a pseudo-random live handle) and probing queries *)
    QCheck.(
      pair (int_range 0 1000)
        (small_list
           (option (pair (float_range (-20.) 20.) (float_range (-20.) 20.)))))
    (fun (seed, script) ->
      let rng = Random.State.make [| seed |] in
      let inst, u = dyn_ptree () in
      let live = Hashtbl.create 16 in
      let check () =
        let a0 = Random.State.float rng 40. -. 20.
        and a = [| Random.State.float rng 4. -. 2. |] in
        query_handles inst ~a0 ~a = dyn_oracle live ~a0 ~a
      in
      List.for_all
        (fun step ->
          (match step with
          | Some (x, y) ->
              let h = u.Index.u_insert [| x; y |] in
              Hashtbl.replace live h [| x; y |]
          | None ->
              let handles = Hashtbl.fold (fun h _ acc -> h :: acc) live [] in
              (match handles with
              | [] -> ()
              | hs ->
                  let victim =
                    List.nth hs (Random.State.int rng (List.length hs))
                  in
                  Hashtbl.remove live victim;
                  ignore (u.Index.u_delete victim)));
          check ())
        script)

let test_dynamic_amortized_rebuilds () =
  let inst, u = dyn_ptree ~memtable_cap:8 ~block_size:8 () in
  let rng = Random.State.make [| 5 |] in
  let n = 2000 in
  for _ = 1 to n do
    ignore
      (u.Index.u_insert
         [| Random.State.float rng 10.; Random.State.float rng 10. |])
  done;
  (* logarithmic method: each of the ~n/cap spills rebuilds one level,
     carries included, so far fewer than n inner builds in total; and
     at most log2(n/cap) + 1 occupied levels *)
  Alcotest.(check bool) "rebuilds amortized" true (counter inst "merges" <= n);
  Alcotest.(check bool) "few levels" true (counter inst "levels" <= 12)

let test_dynamic_mass_delete_compacts () =
  let inst, u = dyn_ptree ~memtable_cap:8 ~block_size:8 () in
  let handles =
    List.init 500 (fun i -> u.Index.u_insert [| float_of_int i; 0. |])
  in
  List.iteri (fun i h -> if i < 400 then ignore (u.Index.u_delete h)) handles;
  Alcotest.(check int) "100 live" 100 (u.Index.u_live ());
  (* the tombstone-majority compaction must have fired: space
     proportional to the live set, not the 500 inserted points *)
  let space = Index.space_blocks inst in
  Alcotest.(check bool)
    (Printf.sprintf "space %d compacted" space)
    true (space < 200)

(* --- Seg_intersect ------------------------------------------------------ *)

let seg_oracle segments (qa, qb) =
  let side a b p = Point2.orient a b p in
  let intersects (a, b) (c, d) =
    side a b c * side a b d <= 0 && side c d a * side c d b <= 0
  in
  Array.to_list
    (Array.mapi (fun i s -> (i, s)) segments)
  |> List.filter_map (fun (i, s) ->
         if intersects s (qa, qb) then Some i else None)

let rand_seg rng range =
  let p () =
    Point2.make
      (Random.State.float rng (2. *. range) -. range)
      (Random.State.float rng (2. *. range) -. range)
  in
  (p (), p ())

let test_seg_basic () =
  let segments =
    [|
      (Point2.make 0. 0., Point2.make 10. 10.);
      (Point2.make 0. 10., Point2.make 10. 0.);
      (Point2.make 20. 20., Point2.make 30. 20.);
    |]
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size:4 segments in
  (* a segment crossing the X through the middle *)
  Alcotest.(check (list int)) "crosses both diagonals" [ 0; 1 ]
    (Core.Seg_intersect.query t (Point2.make 4. 6.) (Point2.make 6. 4.));
  Alcotest.(check (list int)) "misses everything" []
    (Core.Seg_intersect.query t (Point2.make 40. 0.) (Point2.make 50. 0.));
  Alcotest.(check (list int)) "hits the far horizontal" [ 2 ]
    (Core.Seg_intersect.query t (Point2.make 25. 0.) (Point2.make 25. 25.))

let prop_seg_matches_oracle =
  QCheck.Test.make ~count:80 ~name:"segment query = brute-force oracle"
    QCheck.(pair (int_range 0 10_000) (int_range 5 120))
    (fun (seed, n) ->
      let rng = Random.State.make [| seed |] in
      let segments = Array.init n (fun _ -> rand_seg rng 20.) in
      let stats = Emio.Io_stats.create () in
      let t = Core.Seg_intersect.build ~stats ~block_size:4 segments in
      let ok = ref true in
      for _ = 1 to 10 do
        let q = rand_seg rng 25. in
        let got = Core.Seg_intersect.query t (fst q) (snd q) in
        let want = seg_oracle segments q in
        if got <> want then ok := false
      done;
      !ok)

let test_seg_vertical_cases () =
  let segments =
    [|
      (Point2.make 5. 0., Point2.make 5. 10.); (* vertical stored *)
      (Point2.make 0. 5., Point2.make 10. 5.);
    |]
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size:4 segments in
  Alcotest.(check (list int)) "horizontal query hits vertical segment" [ 0 ]
    (Core.Seg_intersect.query t (Point2.make 0. 2.) (Point2.make 10. 2.));
  Alcotest.(check (list int)) "vertical query hits horizontal segment" [ 1 ]
    (Core.Seg_intersect.query t (Point2.make 2. 0.) (Point2.make 2. 10.));
  Alcotest.(check (list int)) "vertical query hits both" [ 0; 1 ]
    (Core.Seg_intersect.query t (Point2.make 0. 0.) (Point2.make 10. 10.))

let test_seg_empty () =
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size:4 [||] in
  Alcotest.(check (list int)) "empty" []
    (Core.Seg_intersect.query t (Point2.make 0. 0.) (Point2.make 1. 1.))

let test_seg_io_sublinear () =
  (* on a sparse query, the structure must beat the n-block scan *)
  let rng = Random.State.make [| 77 |] in
  let n = 16384 and block_size = 32 in
  (* short segments scattered in a large area *)
  let segments =
    Array.init n (fun _ ->
        let cx = Random.State.float rng 400. -. 200.
        and cy = Random.State.float rng 400. -. 200. in
        ( Point2.make cx cy,
          Point2.make
            (cx +. Random.State.float rng 2.)
            (cy +. Random.State.float rng 2.) ))
  in
  let stats = Emio.Io_stats.create () in
  let t = Core.Seg_intersect.build ~stats ~block_size segments in
  let scan_blocks = n / block_size in
  let total = ref 0 in
  let trials = 20 in
  for _ = 1 to trials do
    let cx = Random.State.float rng 300. -. 150.
    and cy = Random.State.float rng 300. -. 150. in
    let q = (Point2.make cx cy, Point2.make (cx +. 5.) (cy +. 3.)) in
    Emio.Io_stats.reset stats;
    ignore (Core.Seg_intersect.query t (fst q) (snd q));
    total := !total + Emio.Io_stats.reads stats
  done;
  let avg = float_of_int !total /. float_of_int trials in
  if avg >= float_of_int scan_blocks then
    Alcotest.failf "avg %g I/Os vs scan %d" avg scan_blocks

let () =
  Alcotest.run "extensions"
    [
      ( "dynamized_ptree",
        [
          Alcotest.test_case "basic" `Quick test_dynamic_basic;
          QCheck_alcotest.to_alcotest prop_dynamic_matches_oracle;
          Alcotest.test_case "amortized rebuilds" `Quick
            test_dynamic_amortized_rebuilds;
          Alcotest.test_case "mass delete compacts" `Quick
            test_dynamic_mass_delete_compacts;
        ] );
      ( "seg_intersect",
        [
          Alcotest.test_case "basic" `Quick test_seg_basic;
          QCheck_alcotest.to_alcotest prop_seg_matches_oracle;
          Alcotest.test_case "vertical cases" `Quick test_seg_vertical_cases;
          Alcotest.test_case "empty" `Quick test_seg_empty;
          Alcotest.test_case "sublinear I/O" `Slow test_seg_io_sublinear;
        ] );
    ]
