(* The LSM dynamization layer: churn conformance (query results
   bit-equal to a static structure rebuilt from the live points, for
   several inner kinds x workloads x insert/delete interleavings x
   pool domain counts), deterministic accounting, the directory
   snapshot format (roundtrip, post-reopen churn, corruption matrix),
   and composition over the sharded wrapper. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Lsm = Lcsearch_index.Lsm
module Shard = Lcsearch_index.Shard

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let temp_dir () =
  let path = Filename.temp_file "lcsearch_lsm" ".snapdir" in
  Sys.remove path;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  at_exit (fun () -> try rm path with Sys_error _ -> ());
  path

let build_params = Index.default_params

let rows_of_dataset ds =
  Array.init (Index.dataset_length ds) (fun i ->
      match ds with
      | Index.Pts2 pts -> [| Geom.Point2.x pts.(i); Geom.Point2.y pts.(i) |]
      | Index.Pts3 pts ->
          [|
            Geom.Point3.x pts.(i); Geom.Point3.y pts.(i); Geom.Point3.z pts.(i);
          |]
      | Index.PtsD pts -> Array.copy pts.(i))

let dataset_of_rows (module M : Index.S) ~dim rows =
  match M.preferred ~dim with
  | `Pts2 -> Index.Pts2 (Array.map (fun r -> Geom.Point2.make r.(0) r.(1)) rows)
  | `Pts3 ->
      Index.Pts3 (Array.map (fun r -> Geom.Point3.make r.(0) r.(1) r.(2)) rows)
  | `PtsD -> Index.PtsD (Array.map Array.copy rows)

(* A churn script shared by the dynamized instance and a (handle ->
   row) model: [`Ins i] inserts fresh row i of a pre-generated pool,
   [`Del k] deletes the k-th oldest live handle. *)
let interleavings =
  [
    ( "insert-burst",
      fun n_extra _live -> List.init n_extra (fun i -> `Ins i) );
    ( "alternating",
      fun n_extra _live ->
        List.concat (List.init n_extra (fun i -> [ `Ins i; `Del 0 ])) );
    ( "delete-heavy",
      fun n_extra live ->
        (* delete well past half the points to force compaction, then
           refill *)
        List.init (live * 3 / 5) (fun _ -> `Del 0)
        @ List.init n_extra (fun i -> `Ins i) );
  ]

let apply_churn (type a) (module L : Index.S with type t = a) (t : a) ~pool ops
    =
  let u = Option.get L.update in
  let model = ref [] (* (handle, row), newest first *) in
  let n0 = u.Index.live t in
  (* bulk-built handles are 0..n0-1 *)
  for h = n0 - 1 downto 0 do
    model := (h, None) :: !model
  done;
  List.iter
    (fun op ->
      match op with
      | `Ins i ->
          let row = pool.(i) in
          let h = u.Index.insert t row in
          model := !model @ [ (h, Some row) ]
      | `Del k ->
          let h, _ = List.nth !model k in
          let ok = u.Index.delete t h in
          if not ok then Alcotest.failf "delete of live handle %d refused" h;
          model := List.filter (fun (h', _) -> h' <> h) !model)
    ops;
  !model

(* Resolve the model against the original dataset rows: entries
   inserted during churn carry their row, originals index the build
   dataset. *)
let model_rows base model =
  List.map
    (fun (h, row) ->
      match row with Some r -> r | None -> base.(h))
    model

let conformance_case ~inner ~dim ~kind ~domains ~interleaving () =
  let (module M : Index.S) = Registry.find_exn inner in
  let rng = Workload.rng (9000 + (13 * dim) + (Hashtbl.hash inner mod 97)) in
  let n = 300 in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let base = rows_of_dataset ds in
  let extra = Workloads.dataset rng ~kind ~dim ~n:150 (module M : Index.S) in
  let pool = rows_of_dataset extra in
  let qs = Workloads.queries rng ds ~fraction:0.05 ~count:5 in
  let (module L : Index.S) =
    Lsm.make ~memtable_cap:16 ~build_domains:domains ~inner:(module M) ()
  in
  Alcotest.(check string) "name is the inner's" M.name L.name;
  Alcotest.(check bool) "updatable" true (Option.is_some L.update);
  let t = L.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let gen = List.assoc interleaving interleavings in
  let ops = gen (Array.length pool) n in
  let model = apply_churn (module L) t ~pool ops in
  let live = model_rows base model in
  let u = Option.get L.update in
  Alcotest.(check int) "live count" (List.length model) (u.Index.live t);
  (* the oracle: the same static structure rebuilt from the live rows *)
  let ods = dataset_of_rows (module M) ~dim (Array.of_list live) in
  let oracle =
    M.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ods
  in
  let handle_row = List.map (fun (h, r) -> (h, r)) model in
  List.iteri
    (fun i q ->
      let label fmt =
        Printf.sprintf "%s d=%d %s %s domains=%d q%d: %s" inner dim
          (Workloads.kind_name kind) interleaving domains i fmt
      in
      let want_rows = sorted_rows (M.query oracle q) in
      Alcotest.(check bool)
        (label "rows") true
        (sorted_rows (L.query t q) = want_rows);
      Alcotest.(check int)
        (label "count") (M.query_count oracle q) (L.query_count t q);
      let r = Emio.Reporter.create () in
      let c = L.query_into t q r in
      Alcotest.(check int) (label "query_into count") (List.length want_rows) c;
      if L.reports_ids then begin
        (* reported handles must map back to exactly the oracle rows *)
        let got =
          List.sort compare
            (List.map
               (fun h ->
                 match List.assoc_opt h handle_row with
                 | Some (Some r) -> Array.to_list r
                 | Some None -> Array.to_list base.(h)
                 | None -> Alcotest.failf "reported dead handle %d" h)
               (Emio.Reporter.to_list r))
        in
        Alcotest.(check bool) (label "handles resolve to rows") true
          (got = want_rows)
      end)
    qs

(* ---- accounting: identical across runs and domain counts ---- *)

let test_cost_determinism () =
  let (module M : Index.S) = Registry.find_exn "ptree" in
  let rng = Workload.rng 777 in
  let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:300 (module M : Index.S) in
  let pool = rows_of_dataset (Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:100 (module M : Index.S)) in
  let qs = Workloads.queries rng ds ~fraction:0.05 ~count:4 in
  let runs =
    List.map
      (fun domains ->
        let (module L : Index.S) =
          Lsm.make ~memtable_cap:16 ~build_domains:domains ~inner:(module M) ()
        in
        let stats = Emio.Io_stats.create () in
        let ctx = Emio.Cost_ctx.create () in
        let t =
          Emio.Cost_ctx.with_ctx ctx (fun () ->
              let t = L.build ~params:build_params ~stats ds in
              let u = Option.get L.update in
              Array.iteri (fun i row -> ignore (u.Index.insert t row : int);
                  if i mod 3 = 0 then ignore (u.Index.delete t i : bool))
                pool;
              t)
        in
        let costs =
          List.map
            (fun q ->
              let c = Emio.Cost_ctx.create () in
              let r = Emio.Cost_ctx.with_ctx c (fun () -> L.query_count t q) in
              (r, Emio.Cost_ctx.reads c, Emio.Cost_ctx.writes c))
            qs
        in
        (Emio.Io_stats.total stats, Emio.Cost_ctx.total ctx, costs))
      [ 1; 2; 4 ]
  in
  match runs with
  | (st0, ct0, costs0) :: rest ->
      Alcotest.(check bool)
        "churn charges the caller's Cost_ctx like its Io_stats" true
        (st0 = ct0 && st0 > 0);
      List.iteri
        (fun i (st, ct, cs) ->
          Alcotest.(check int)
            (Printf.sprintf "run %d: stats total" (i + 2))
            st0 st;
          Alcotest.(check int) (Printf.sprintf "run %d: ctx total" (i + 2)) ct0 ct;
          Alcotest.(check bool)
            (Printf.sprintf "run %d: per-query costs identical" (i + 2))
            true (cs = costs0))
        rest
  | [] -> assert false

(* ---- level shape: binary counter + log-factor fanout ---- *)

let test_level_invariant () =
  let (module M : Index.S) = Registry.find_exn "h2" in
  let rng = Workload.rng 31 in
  let pool =
    rows_of_dataset
      (Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:500
         (module M : Index.S))
  in
  let (module L : Index.S) =
    Lsm.make ~memtable_cap:8 ~inner:(module M) ()
  in
  let t =
    L.build ~params:build_params ~stats:(Emio.Io_stats.create ())
      (Index.Pts2 [||])
  in
  let u = Option.get L.update in
  Array.iter (fun row -> ignore (u.Index.insert t row : int)) pool;
  let counters = L.counters t in
  let levels = List.assoc "levels" counters in
  let mem = List.assoc "memtable" counters in
  Alcotest.(check bool)
    (Printf.sprintf "levels %d <= log2(500/8)+1" levels)
    true
    (levels <= 7);
  Alcotest.(check bool) "memtable below cap" true (mem < 8);
  Alcotest.(check int) "live" 500 (u.Index.live t);
  (* every insert is present *)
  let q_all = { Index.a0 = 1e9; a = [| 0. |] } in
  Alcotest.(check int) "all points reported" 500 (L.query_count t q_all)

(* ---- snapshots ---- *)

let meta = "s=h2;n=256;b=64;w=uniform;seed=3;d=2"

let save_lsm (type a) (module L : Index.S with type t = a) (t : a) path =
  let ops = Option.get L.snapshot in
  Alcotest.(check string) "snapshot kind" Lsm.lsm_kind ops.Index.snapshot_kind;
  ops.Index.save t ~path ~meta ~page_size:None

let test_roundtrip ~inner ~dim () =
  let (module M : Index.S) = Registry.find_exn inner in
  let rng = Workload.rng (555 + dim) in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:256
      (module M : Index.S)
  in
  let base = rows_of_dataset ds in
  let pool =
    rows_of_dataset
      (Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:60
         (module M : Index.S))
  in
  let qs = Workloads.queries rng ds ~fraction:0.08 ~count:4 in
  let (module L : Index.S) =
    Lsm.make ~memtable_cap:16 ~inner:(module M) ()
  in
  let t = L.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let model =
    apply_churn (module L) t ~pool
      (List.concat (List.init 40 (fun i -> [ `Ins i; `Del 0 ])))
  in
  let path = temp_dir () in
  save_lsm (module L) t path;
  Alcotest.(check bool) "is_lsm_path" true (Lsm.is_lsm_path path);
  Alcotest.(check bool)
    "lsm dir is not a sharded dir" false
    (Shard.is_sharded_path path);
  (match Lsm.read_manifest path with
  | Error e ->
      Alcotest.failf "manifest unreadable: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok m ->
      Alcotest.(check int) "manifest cap" 16 m.Lsm.cap;
      Alcotest.(check int)
        "manifest live rows = model" (List.length model)
        (Array.length (Lsm.manifest_live_rows m)));
  match Lsm.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
  | Error e ->
      Alcotest.failf "open_snapshot failed: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok (inst, info, _m) ->
      Alcotest.(check string)
        "info kind" Lsm.lsm_kind info.Diskstore.Snapshot.kind;
      Alcotest.(check string) "instance name" M.name (Index.name inst);
      List.iteri
        (fun i q ->
          let label fmt =
            Printf.sprintf "%s d=%d reopened q%d: %s" inner dim i fmt
          in
          Alcotest.(check bool)
            (label "rows") true
            (sorted_rows (Index.query inst q) = sorted_rows (L.query t q));
          Alcotest.(check int)
            (label "count") (L.query_count t q)
            (Index.query_count inst q))
        qs;
      (* churn continues after reopen: handles are stable, inserts get
         fresh handles, and a second save into the same directory
         (levels shifted by merges) reopens cleanly *)
      let u = Option.get (Index.updater inst) in
      let h0, _ = List.nth model 0 in
      Alcotest.(check bool) "reopened delete" true (u.Index.u_delete h0);
      Alcotest.(check bool) "double delete refused" false (u.Index.u_delete h0);
      List.iteri
        (fun i row ->
          ignore (u.Index.u_insert row : int);
          ignore i)
        (List.filteri (fun i _ -> i >= 40 && i < 60)
           (Array.to_list pool));
      let live_now = u.Index.u_live () in
      Alcotest.(check int)
        "live after reopen churn"
        (List.length model - 1 + 20)
        live_now;
      Index.snapshot_save inst ~path ~meta ~page_size:None;
      (match Lsm.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
      | Error e ->
          Alcotest.failf "second reopen failed: %s"
            (Diskstore.Snapshot.error_to_string e)
      | Ok (inst2, _, m2) ->
          Alcotest.(check int)
            "second reopen live rows" live_now
            (Array.length (Lsm.manifest_live_rows m2));
          List.iter
            (fun q ->
              Alcotest.(check int) "second reopen count"
                (Index.query_count inst q)
                (Index.query_count inst2 q))
            qs);
      ignore base

(* ---- corruption matrix ---- *)

let flip_byte path pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = min pos (len - 1) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let build_saved_h2 () =
  let (module M : Index.S) = Registry.find_exn "h2" in
  let rng = Workload.rng 66 in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:256
      (module M : Index.S)
  in
  let (module L : Index.S) =
    Lsm.make ~memtable_cap:16 ~inner:(module M) ()
  in
  let t = L.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let u = Option.get L.update in
  (* leave a tombstone and a memtable resident in the snapshot *)
  ignore (u.Index.delete t 0 : bool);
  ignore (u.Index.insert t [| 1.0; 2.0 |] : int);
  let path = temp_dir () in
  save_lsm (module L) t path;
  path

let expect_open_error label path pred =
  match Lsm.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
  | Ok _ -> Alcotest.failf "%s: open_snapshot accepted damaged snapshot" label
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" label (Diskstore.Snapshot.error_to_string e))
        true (pred e)

let test_corrupted_manifest () =
  let path = build_saved_h2 () in
  flip_byte (Filename.concat path "MANIFEST") 40;
  expect_open_error "corrupted manifest" path (function
    | Diskstore.Snapshot.Bad_section_crc _ | Diskstore.Snapshot.Bad_payload _
      ->
        true
    | _ -> false)

let test_truncated_manifest () =
  let path = build_saved_h2 () in
  let mf = Filename.concat path "MANIFEST" in
  let ic = open_in_bin mf in
  let b = Bytes.create 3 in
  really_input ic b 0 3;
  close_in ic;
  let oc = open_out_bin mf in
  output_bytes oc b;
  close_out oc;
  expect_open_error "truncated manifest" path (function
    | Diskstore.Snapshot.Truncated _ -> true
    | _ -> false)

let level_files path =
  Array.to_list (Sys.readdir path)
  |> List.filter (fun f ->
         String.length f >= 6 && String.sub f 0 6 = "level-")
  |> List.sort compare

let test_corrupted_level_file () =
  let path = build_saved_h2 () in
  let f = List.hd (level_files path) in
  flip_byte (Filename.concat path f) 2000;
  expect_open_error "corrupted level file" path (function
    | Diskstore.Snapshot.Bad_section_crc { section } -> String.equal section f
    | _ -> false)

let test_missing_level_file () =
  let path = build_saved_h2 () in
  let f = List.hd (level_files path) in
  Sys.remove (Filename.concat path f);
  expect_open_error "missing level file" path (function
    | Diskstore.Snapshot.Bad_header msg ->
        let ls = String.length msg and lsub = String.length f in
        let rec go i =
          (i + lsub <= ls) && (String.sub msg i lsub = f || go (i + 1))
        in
        go 0
    | _ -> false)

let test_not_lsm_paths () =
  Alcotest.(check bool) "regular file" false (Lsm.is_lsm_path "dune");
  Alcotest.(check bool)
    "missing path" false
    (Lsm.is_lsm_path "/nonexistent/lcsearch");
  match Lsm.read_manifest (Filename.get_temp_dir_name ()) with
  | Error (Diskstore.Snapshot.Bad_header _) -> ()
  | Error e ->
      Alcotest.failf "unexpected error: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "read_manifest on a plain directory must fail"

(* ---- composition: Lsm over the sharded wrapper ---- *)

let test_over_shard () =
  let (module M : Index.S) = Registry.find_exn "h2" in
  let rng = Workload.rng 4321 in
  let ds =
    Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:300
      (module M : Index.S)
  in
  let pool =
    rows_of_dataset
      (Workloads.dataset rng ~kind:Workloads.Uniform ~dim:2 ~n:80
         (module M : Index.S))
  in
  let qs = Workloads.queries rng ds ~fraction:0.05 ~count:4 in
  let (module Sh : Index.S) =
    Shard.make ~inner:(module M) ~shards:4 ~partition:Shard.Str ()
  in
  let (module L : Index.S) =
    Lsm.make ~memtable_cap:32 ~inner:(module Sh) ()
  in
  let t = L.build ~params:build_params ~stats:(Emio.Io_stats.create ()) ds in
  let base = rows_of_dataset ds in
  let model =
    apply_churn (module L) t ~pool
      (List.concat (List.init 60 (fun i -> [ `Ins i; `Del 0 ])))
  in
  let live = Array.of_list (model_rows base model) in
  let oracle =
    M.build ~params:build_params ~stats:(Emio.Io_stats.create ())
      (dataset_of_rows (module M) ~dim:2 live)
  in
  List.iteri
    (fun i q ->
      Alcotest.(check bool)
        (Printf.sprintf "lsm-over-shard q%d rows" i)
        true
        (sorted_rows (L.query t q) = sorted_rows (M.query oracle q)))
    qs;
  (* durable composition: levels are sharded directories *)
  let path = temp_dir () in
  save_lsm (module L) t path;
  match Lsm.open_snapshot ~stats:(Emio.Io_stats.create ()) path with
  | Error e ->
      Alcotest.failf "lsm-over-shard reopen failed: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok (inst, _, _) ->
      List.iter
        (fun q ->
          Alcotest.(check int) "lsm-over-shard reopened count"
            (L.query_count t q)
            (Index.query_count inst q))
        qs

let conformance_tests =
  List.concat_map
    (fun (inner, dim) ->
      List.concat_map
        (fun (ilv, _) ->
          List.concat_map
            (fun domains ->
              List.map
                (fun kind ->
                  Alcotest.test_case
                    (Printf.sprintf "%s d=%d %s %s domains=%d" inner dim
                       (Workloads.kind_name kind) ilv domains)
                    `Quick
                    (conformance_case ~inner ~dim ~kind ~domains
                       ~interleaving:ilv))
                [ Workloads.Uniform; Workloads.Clusters ])
            [ 1; 2; 4 ])
        interleavings)
    [ ("h2", 2); ("ptree", 2); ("h3", 3); ("cert", 3) ]

let () =
  Alcotest.run "lsm"
    [
      ("conformance", conformance_tests);
      ( "shape",
        [
          Alcotest.test_case "binary-counter level invariant" `Quick
            test_level_invariant;
          Alcotest.test_case "deterministic accounting" `Quick
            test_cost_determinism;
          Alcotest.test_case "lsm over shard" `Quick test_over_shard;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip h2" `Quick (test_roundtrip ~inner:"h2" ~dim:2);
          Alcotest.test_case "roundtrip ptree" `Quick
            (test_roundtrip ~inner:"ptree" ~dim:2);
          Alcotest.test_case "roundtrip h3" `Quick
            (test_roundtrip ~inner:"h3" ~dim:3);
          Alcotest.test_case "corrupted manifest" `Quick test_corrupted_manifest;
          Alcotest.test_case "truncated manifest" `Quick test_truncated_manifest;
          Alcotest.test_case "corrupted level file" `Quick
            test_corrupted_level_file;
          Alcotest.test_case "missing level file" `Quick test_missing_level_file;
          Alcotest.test_case "non-lsm paths" `Quick test_not_lsm_paths;
        ] );
    ]
