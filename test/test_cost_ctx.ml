(* Cost_ctx: scoped I/O accounting, nesting, trace events, and the
   snapshot-reopen stats regression (the Store.set_stats footgun). *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Query_engine = Lcsearch_index.Query_engine

let check = Alcotest.(check int)

(* A context mirrors exactly what the ambient counters record, and the
   ambient counters do not change behaviour when a context is
   installed. *)
let test_scoped_counts () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let ids = List.init 5 (fun i -> Emio.Store.alloc store [| i |]) in
  let ambient_before = Emio.Io_stats.reads stats in
  let ctx = Emio.Cost_ctx.create () in
  Emio.Cost_ctx.with_ctx ctx (fun () ->
      List.iter (fun id -> ignore (Emio.Store.read store id)) ids);
  check "ctx reads" 5 (Emio.Cost_ctx.reads ctx);
  check "ambient delta matches ctx" 5
    (Emio.Io_stats.reads stats - ambient_before);
  (* after exit the context stops charging *)
  ignore (Emio.Store.read store (List.hd ids));
  check "ctx unchanged after exit" 5 (Emio.Cost_ctx.reads ctx)

let test_nesting () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let id = Emio.Store.alloc store [| 1 |] in
  let outer = Emio.Cost_ctx.create () in
  let inner1 = Emio.Cost_ctx.create () in
  let inner2 = Emio.Cost_ctx.create () in
  Emio.Cost_ctx.with_ctx outer (fun () ->
      Emio.Cost_ctx.with_ctx inner1 (fun () ->
          ignore (Emio.Store.read store id));
      Emio.Cost_ctx.with_ctx inner2 (fun () ->
          ignore (Emio.Store.read store id);
          ignore (Emio.Store.read store id)));
  check "inner1" 1 (Emio.Cost_ctx.reads inner1);
  check "inner2" 2 (Emio.Cost_ctx.reads inner2);
  check "outer sees both" 3 (Emio.Cost_ctx.reads outer)

let test_exception_safe () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 () in
  let id = Emio.Store.alloc store [| 1 |] in
  let ctx = Emio.Cost_ctx.create () in
  (try
     Emio.Cost_ctx.with_ctx ctx (fun () ->
         ignore (Emio.Store.read store id);
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "ctx uninstalled" false (Emio.Cost_ctx.active ());
  (* a read after the exception must not be charged to ctx *)
  ignore (Emio.Store.read store id);
  check "no late charge" 1 (Emio.Cost_ctx.reads ctx)

(* Block_read events carry the hit flag; untraced contexts see none. *)
let test_trace_block_events () =
  let stats = Emio.Io_stats.create () in
  let store = Emio.Store.create ~stats ~block_size:4 ~cache_blocks:2 () in
  let id = Emio.Store.alloc store [| 1 |] in
  let events = ref [] in
  let ctx = Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) () in
  Emio.Cost_ctx.with_ctx ctx (fun () ->
      ignore (Emio.Store.read store id);
      ignore (Emio.Store.read store id));
  let reads =
    List.filter_map
      (function Emio.Cost_ctx.Block_read { hit; _ } -> Some hit | _ -> None)
      (List.rev !events)
  in
  Alcotest.(check (list bool)) "miss then hit" [ true; true ] reads;
  (* alloc put the id in the cache, so both reads hit *)
  check "hits mirrored" 2 (Emio.Cost_ctx.hits ctx)

(* Structure-level events: the §3 structure emits per-layer Level
   events, the §5 tree per-node Node events with depths. *)
let test_trace_structure_events () =
  let rng = Workload.rng 11 in
  let pts = Workload.uniform2 rng ~n:512 ~range:100. in
  let stats = Emio.Io_stats.create () in
  let h2 = Core.Halfspace2d.build ~stats ~block_size:32 pts in
  let events = ref [] in
  let ctx = Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) () in
  Emio.Cost_ctx.with_ctx ctx (fun () ->
      ignore (Core.Halfspace2d.query_count h2 ~slope:0.3 ~icept:1.));
  let levels =
    List.filter
      (function Emio.Cost_ctx.Level { label = "h2"; _ } -> true | _ -> false)
      !events
  in
  check "one Level event per visited layer"
    (Core.Halfspace2d.last_layers_visited h2)
    (List.length levels);
  let ptsd = Workload.uniform_d rng ~n:512 ~dim:2 ~range:50. in
  let pt = Core.Partition_tree.build ~stats ~block_size:32 ~dim:2 ptsd in
  let events = ref [] in
  let ctx = Emio.Cost_ctx.create ~trace:(fun ev -> events := ev :: !events) () in
  Emio.Cost_ctx.with_ctx ctx (fun () ->
      ignore (Core.Partition_tree.query_halfspace pt ~a0:0. ~a:[| 1. |]));
  let nodes =
    List.filter
      (function Emio.Cost_ctx.Node { label = "ptree"; _ } -> true | _ -> false)
      !events
  in
  check "one Node event per visited node"
    (Core.Partition_tree.last_visited_nodes pt)
    (List.length nodes)

(* Query_engine runs each query in its own context. *)
let test_query_engine_batch () =
  let rng = Workload.rng 12 in
  let pts = Workload.uniform2 rng ~n:1024 ~range:100. in
  let stats = Emio.Io_stats.create () in
  let inst =
    Index.build (Registry.find_exn "scan") ~params:Index.default_params ~stats
      (Index.Pts2 pts)
  in
  let q = { Index.a0 = 0.; a = [| 1. |] } in
  let costs = Query_engine.run_batch inst [ q; q; q ] in
  check "three cost records" 3 (List.length costs);
  List.iter
    (fun c ->
      check "scan reads = n blocks" 16 c.Query_engine.reads;
      check "no writes" 0 c.Query_engine.writes)
    costs

(* The set_stats regression: after of_snapshot with a fresh stats sink,
   query I/O must be charged to the reopening process (observable both
   through the fresh ambient sink and through a scoped context), not
   leak into the marshalled copy of the builder's stats. *)
let test_snapshot_reopen_stats () =
  List.iter
    (fun name ->
      let (module M : Index.S) = Registry.find_exn name in
      let ops = Option.get M.snapshot in
      let rng = Workload.rng 13 in
      let pts = Workload.uniform2 rng ~n:2048 ~range:100. in
      let build_stats = Emio.Io_stats.create () in
      let t =
        M.build ~params:Index.default_params ~stats:build_stats
          (Index.Pts2 pts)
      in
      let path = Filename.temp_file "lcsearch_test" ".snapshot" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          ops.Index.save t ~path ~meta:"" ~page_size:None;
          let reopen_stats = Emio.Io_stats.create () in
          match
            ops.Index.load ~stats:reopen_stats
              ~policy:Diskstore.Buffer_pool.Lru ~cache_pages:0 path
          with
          | Error e ->
              Alcotest.failf "%s reopen: %s" name
                (Diskstore.Snapshot.error_to_string e)
          | Ok (t', _) ->
              Emio.Io_stats.reset reopen_stats;
              let build_before = Emio.Io_stats.total build_stats in
              let ctx = Emio.Cost_ctx.create () in
              let count =
                Emio.Cost_ctx.with_ctx ctx (fun () ->
                    M.query_count t' { Index.a0 = 0.; a = [| 1. |] })
              in
              Alcotest.(check bool)
                (name ^ ": query did I/O") true
                (Emio.Cost_ctx.reads ctx > 0);
              check
                (name ^ ": reopen sink charged = ctx")
                (Emio.Cost_ctx.reads ctx)
                (Emio.Io_stats.reads reopen_stats);
              check
                (name ^ ": builder sink untouched")
                build_before
                (Emio.Io_stats.total build_stats);
              check
                (name ^ ": same answer as before the roundtrip")
                (M.query_count t { Index.a0 = 0.; a = [| 1. |] })
                count))
    [ "h2"; "rtree"; "scan" ]

let () =
  Alcotest.run "cost_ctx"
    [
      ( "scoping",
        [
          Alcotest.test_case "scoped counts" `Quick test_scoped_counts;
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safe;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "block events" `Quick test_trace_block_events;
          Alcotest.test_case "structure events" `Quick
            test_trace_structure_events;
        ] );
      ( "engine",
        [ Alcotest.test_case "run_batch" `Quick test_query_engine_batch ] );
      ( "snapshots",
        [
          Alcotest.test_case "reopen charges fresh sink" `Quick
            test_snapshot_reopen_stats;
        ] );
    ]
