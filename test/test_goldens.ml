(* Golden I/O counts, captured on the pre-refactor simulator with the
   Table-1 measurement protocol (block_size 64, no cache, 25 queries at
   2% selectivity, rng seed 100+n).  The refactor moved dispatch into
   the registry and threaded Cost_ctx through the store; these numbers
   assert that the simulator charges exactly the same I/Os as before —
   any drift here means the refactor changed measured behaviour, not
   just plumbing. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Bench_kit = Lcsearch_index.Bench_kit

type golden = {
  g_name : string;
  g_dim : int;
  g_n : int;
  g_build : int;
  g_space : int;
  g_qreads : int;
  g_qresults : int;
}

let goldens =
  [
    { g_name = "h2"; g_dim = 2; g_n = 4096; g_build = 104; g_space = 104;
      g_qreads = 403; g_qresults = 2050 };
    { g_name = "rtree"; g_dim = 2; g_n = 4096; g_build = 65; g_space = 65;
      g_qreads = 109; g_qresults = 2050 };
    { g_name = "rtree-hilbert"; g_dim = 2; g_n = 4096; g_build = 65;
      g_space = 65; g_qreads = 125; g_qresults = 2050 };
    { g_name = "quadtree"; g_dim = 2; g_n = 4096; g_build = 225;
      g_space = 225; g_qreads = 284; g_qresults = 2050 };
    { g_name = "gridfile"; g_dim = 2; g_n = 4096; g_build = 65; g_space = 65;
      g_qreads = 255; g_qresults = 2050 };
    { g_name = "scan"; g_dim = 2; g_n = 4096; g_build = 64; g_space = 64;
      g_qreads = 1600; g_qresults = 2050 };
    { g_name = "ptree"; g_dim = 2; g_n = 4096; g_build = 65; g_space = 65;
      g_qreads = 111; g_qresults = 2050 };
    { g_name = "ptree"; g_dim = 3; g_n = 4096; g_build = 65; g_space = 65;
      g_qreads = 194; g_qresults = 2050 };
    { g_name = "shallow"; g_dim = 3; g_n = 4096; g_build = 130; g_space = 130;
      g_qreads = 207; g_qresults = 2050 };
    { g_name = "h3"; g_dim = 3; g_n = 2048; g_build = 2239; g_space = 2239;
      g_qreads = 979; g_qresults = 1025 };
    { g_name = "tradeoff"; g_dim = 3; g_n = 2048; g_build = 1088;
      g_space = 1088; g_qreads = 1015; g_qresults = 1025 };
    { g_name = "cert"; g_dim = 3; g_n = 2048; g_build = 129; g_space = 129;
      g_qreads = 425; g_qresults = 1025 };
  ]

let check_golden g () =
  let m = Registry.find_exn g.g_name in
  let r = Bench_kit.measure m ~dim:g.g_dim ~n:g.g_n in
  let check what = Alcotest.(check int)
      (Printf.sprintf "%s d=%d n=%d: %s" g.g_name g.g_dim g.g_n what)
  in
  check "build I/Os" g.g_build r.Bench_kit.build_ios;
  check "space blocks" g.g_space r.Bench_kit.space;
  check "query reads (25 queries)" g.g_qreads r.Bench_kit.q_reads_total;
  check "reported points" g.g_qresults r.Bench_kit.q_results_total;
  check "per-query reads sum to the total" r.Bench_kit.q_reads_total
    (List.fold_left ( + ) 0 r.Bench_kit.q_reads)

let () =
  Alcotest.run "goldens"
    [
      ( "table1",
        List.map
          (fun g ->
            Alcotest.test_case
              (Printf.sprintf "%s d=%d n=%d" g.g_name g.g_dim g.g_n)
              `Quick (check_golden g))
          goldens );
    ]
