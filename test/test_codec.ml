(* Round-trip and rejection properties of Emio.Codec — the typed
   binary codecs every snapshot payload block and skeleton section is
   written with.  Anything these tests admit ends up on disk, so the
   properties are strict: bit-exact floats, full-range ints, and a
   Decode error (never a crash or a silent misparse) for every way a
   buffer can be damaged. *)

module C = Emio.Codec

let check_bool = Alcotest.(check bool)
let rt codec v = C.decode codec (C.encode codec v)

let expect_decode label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Codec.Decode" label
  | exception C.Decode _ -> ()

(* ---------- primitives ---------- *)

let test_primitive_edges () =
  List.iter
    (fun v -> Alcotest.(check int) "int" v (rt C.int v))
    [ 0; 1; -1; max_int; min_int; 0x1234_5678_9ABC ];
  List.iter
    (fun v ->
      Alcotest.(check int64)
        "float bits" (Int64.bits_of_float v)
        (Int64.bits_of_float (rt C.float v)))
    [ 0.; -0.; 1.5; -3.25e300; infinity; neg_infinity; nan; 4.9e-324 ];
  List.iter (fun v -> Alcotest.(check int) "u8" v (rt C.u8 v)) [ 0; 1; 255 ];
  List.iter
    (fun v -> Alcotest.(check int) "u32" v (rt C.u32 v))
    [ 0; 1; 0xFFFF_FFFF ];
  expect_decode "u8 out of range" (fun () -> C.encode C.u8 256);
  expect_decode "u8 negative" (fun () -> C.encode C.u8 (-1));
  expect_decode "u32 out of range" (fun () -> C.encode C.u32 0x1_0000_0000);
  Alcotest.(check string)
    "string with NUL and multibyte" "h\xc3\xa9llo\000world"
    (rt C.string "h\xc3\xa9llo\000world");
  Alcotest.(check string) "empty string" "" (rt C.string "");
  check_bool "bool true" true (rt C.bool true);
  check_bool "bool false" false (rt C.bool false);
  Alcotest.(check unit) "unit" () (rt C.unit ());
  (* a bool is one byte on the wire, and only 0/1 decode *)
  expect_decode "bad bool tag" (fun () -> C.decode C.bool (Bytes.make 1 '\002'))

let prop_int =
  QCheck.Test.make ~name:"int roundtrip" ~count:500 QCheck.int (fun v ->
      rt C.int v = v)

let prop_float =
  QCheck.Test.make ~name:"float bit-exact roundtrip" ~count:500 QCheck.float
    (fun v -> Int64.bits_of_float (rt C.float v) = Int64.bits_of_float v)

let prop_string =
  QCheck.Test.make ~name:"string roundtrip" ~count:200 QCheck.string (fun v ->
      rt C.string v = v)

(* ---------- combinators ---------- *)

let test_combinators () =
  let c = C.(pair (triple int float string) (option (array u8))) in
  let v = ((42, 2.5, "x"), Some [| 1; 2; 255 |]) in
  check_bool "nested pair/triple/option/array" true (rt c v = v);
  let v2 = ((min_int, -0., ""), None) in
  check_bool "none arm" true (rt c v2 = v2);
  let l = C.(list (pair bool int)) in
  let lv = [ (true, 1); (false, -2) ] in
  check_bool "list" true (rt l lv = lv);
  check_bool "empty list" true (rt l [] = []);
  let q = C.(quad u8 u8 int float) in
  let qv = (1, 2, -3, 0.5) in
  check_bool "quad" true (rt q qv = qv);
  expect_decode "bad option tag" (fun () ->
      C.decode C.(option u8) (Bytes.make 1 '\007'))

let test_map_variant () =
  (* the tag-byte pattern every node_ref / child codec in the repo
     uses: map over (u8, payload), rejecting unknown tags *)
  let c =
    C.map
      ~decode:(fun (tag, x) ->
        match tag with
        | 0 -> `A x
        | 1 -> `B x
        | t -> raise (C.Decode (Printf.sprintf "bad tag %d" t)))
      ~encode:(function `A x -> (0, x) | `B x -> (1, x))
      C.(pair u8 int)
  in
  check_bool "tag 0" true (rt c (`A 7) = `A 7);
  check_bool "tag 1" true (rt c (`B (-7)) = `B (-7));
  let b = C.encode c (`A 7) in
  Bytes.set b 0 '\002';
  expect_decode "unknown variant tag" (fun () -> C.decode c b)

let test_fix_recursive () =
  let tree =
    C.fix (fun self ->
        C.map
          ~decode:(fun (v, kids) -> `Node (v, kids))
          ~encode:(fun (`Node (v, kids)) -> (v, kids))
          C.(pair int (list self)))
  in
  let t = `Node (1, [ `Node (2, []); `Node (3, [ `Node (4, []) ]) ]) in
  check_bool "recursive tree roundtrip" true (rt tree t = t)

let prop_list_pairs =
  QCheck.Test.make ~name:"(int*float) list roundtrip" ~count:200
    QCheck.(list (pair int float))
    (fun v -> compare (rt C.(list (pair int float)) v) v = 0)

let prop_array =
  QCheck.Test.make ~name:"int array roundtrip" ~count:200
    QCheck.(array small_int)
    (fun v -> compare (rt C.(array int) v) v = 0)

let prop_option_string =
  QCheck.Test.make ~name:"string option roundtrip" ~count:200
    QCheck.(option string)
    (fun v -> rt C.(option string) v = v)

(* ---------- framing and damage ---------- *)

let test_versioned () =
  let c = C.versioned ~magic:"lcsearch.test" ~version:3 C.int in
  Alcotest.(check int) "versioned roundtrip" 99 (rt c 99);
  let other = C.versioned ~magic:"lcsearch.other" ~version:3 C.int in
  expect_decode "wrong magic" (fun () -> C.decode other (C.encode c 99));
  let v4 = C.versioned ~magic:"lcsearch.test" ~version:4 C.int in
  expect_decode "wrong version" (fun () -> C.decode v4 (C.encode c 99))

let test_trailing_and_truncation () =
  let c = C.(array int) in
  let b = C.encode c [| 1; 2; 3 |] in
  expect_decode "trailing garbage" (fun () ->
      C.decode c (Bytes.cat b (Bytes.make 1 'x')));
  (* every proper prefix of a valid encoding must be rejected *)
  for keep = 0 to Bytes.length b - 1 do
    expect_decode
      (Printf.sprintf "truncation to %d bytes" keep)
      (fun () -> C.decode c (Bytes.sub b 0 keep))
  done;
  (* a corrupted count field fails before any giant allocation *)
  expect_decode "implausible array count" (fun () ->
      C.decode c (C.encode C.u32 0xFF_FFFF))

let prop_flipped_byte =
  (* flipping any byte of a framed section is rejected or yields a
     different value — it never crashes with anything but Decode *)
  let codec =
    C.versioned ~magic:"lcsearch.prop" ~version:1
      C.(pair (array int) (list float))
  in
  QCheck.Test.make ~name:"flipped byte never escapes Decode" ~count:200
    QCheck.(pair (pair (array small_int) (list float)) small_nat)
    (fun (v, off) ->
      let b = C.encode codec v in
      let off = off mod Bytes.length b in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
      match C.decode codec b with
      | v' -> compare v' v <> 0 || true
      | exception C.Decode _ -> true)

let () =
  Alcotest.run "codec"
    [
      ( "primitives",
        [
          Alcotest.test_case "edge values" `Quick test_primitive_edges;
          QCheck_alcotest.to_alcotest prop_int;
          QCheck_alcotest.to_alcotest prop_float;
          QCheck_alcotest.to_alcotest prop_string;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "nesting" `Quick test_combinators;
          Alcotest.test_case "variants via map" `Quick test_map_variant;
          Alcotest.test_case "recursion via fix" `Quick test_fix_recursive;
          QCheck_alcotest.to_alcotest prop_list_pairs;
          QCheck_alcotest.to_alcotest prop_array;
          QCheck_alcotest.to_alcotest prop_option_string;
        ] );
      ( "framing",
        [
          Alcotest.test_case "versioned magic + version" `Quick test_versioned;
          Alcotest.test_case "trailing bytes and truncation" `Quick
            test_trailing_and_truncation;
          QCheck_alcotest.to_alcotest prop_flipped_byte;
        ] );
    ]
