(* Registry integrity, the error convention of Index.S.build, and the
   conformance suite: every registered structure must report exactly
   the points the linear-scan oracle reports, over every workload kind
   and every dimension it supports — both in memory and again after a
   snapshot save / fresh reopen. *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads

let contains s sub =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

let table1_order =
  [
    "h2";
    "h3";
    "shallow";
    "tradeoff";
    "ptree";
    "cert";
    "rtree";
    "rtree-hilbert";
    "quadtree";
    "gridfile";
    "scan";
  ]

let test_names () =
  Alcotest.(check (list string))
    "registration order" table1_order (Registry.names ())

let test_find () =
  List.iter
    (fun name ->
      let (module M : Index.S) = Registry.find_exn name in
      Alcotest.(check string) "find_exn returns the named module" name M.name;
      match Registry.find name with
      | Some (module M' : Index.S) ->
          Alcotest.(check string) "find agrees" name M'.name
      | None -> Alcotest.failf "find %S returned None" name)
    table1_order;
  Alcotest.(check bool) "unknown name" true (Registry.find "btree" = None);
  match Registry.find_exn "btree" with
  | _ -> Alcotest.fail "find_exn on unknown name must raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "error lists known structures" true
        (List.for_all (fun n -> contains msg n) [ "h2"; "scan" ])

let test_duplicate_register () =
  match Registry.register (List.hd (Registry.all ())) with
  | () -> Alcotest.fail "duplicate register must raise"
  | exception Invalid_argument _ -> ()

let test_for_dim () =
  let names_for d = List.map (fun (module M : Index.S) -> M.name)
      (Registry.for_dim d)
  in
  Alcotest.(check bool) "h2 is 2-d only" true
    (List.mem "h2" (names_for 2) && not (List.mem "h2" (names_for 3)));
  Alcotest.(check bool) "h3 is 3-d only" true
    (List.mem "h3" (names_for 3) && not (List.mem "h3" (names_for 2)));
  Alcotest.(check (list string))
    "4-d support" [ "ptree"; "scan"; "shallow" ]
    (List.sort compare (names_for 4))

let test_snapshot_kinds () =
  let owner kind =
    Option.map
      (fun (module M : Index.S) -> M.name)
      (Registry.find_by_snapshot_kind kind)
  in
  Alcotest.(check (option string)) "h2 kind" (Some "h2") (owner "lcsearch.h2");
  Alcotest.(check (option string))
    "rtree kind" (Some "rtree") (owner "lcsearch.rtree");
  Alcotest.(check (option string))
    "scan kind" (Some "scan") (owner "lcsearch.scan");
  Alcotest.(check (option string)) "unknown kind" None (owner "lcsearch.nope")

(* ---- error convention: malformed build parameters raise
   Invalid_argument (never Failure) with a "name.build:" prefix ---- *)

let expect_invalid_arg label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" label
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (label ^ ": message names the build entry point")
        true (contains msg ".build:")
  | exception Failure msg ->
      Alcotest.failf "%s: raised Failure %S (reserved for I/O damage)" label
        msg

let small_pts2 = Workload.uniform2 (Workload.rng 21) ~n:64 ~range:100.
let small_pts3 = Workload.uniform3 (Workload.rng 22) ~n:64 ~range:50.

let build name ?(extra = []) ds =
  Index.build (Registry.find_exn name)
    ~params:{ Index.default_params with extra }
    ~stats:(Emio.Io_stats.create ()) ds

let test_error_convention () =
  expect_invalid_arg "unknown extra key" (fun () ->
      build "h2" ~extra:[ ("bogus", 1.) ] (Index.Pts2 small_pts2));
  expect_invalid_arg "tradeoff a <= 1" (fun () ->
      build "tradeoff" ~extra:[ ("a", 1.0) ] (Index.Pts3 small_pts3));
  expect_invalid_arg "quadtree max_depth < 1" (fun () ->
      build "quadtree" ~extra:[ ("max_depth", 0.) ] (Index.Pts2 small_pts2));
  expect_invalid_arg "cert cert_cap < 0" (fun () ->
      build "cert" ~extra:[ ("cert_cap", -1.) ] (Index.Pts3 small_pts3));
  expect_invalid_arg "shallow shallow_factor <= 0" (fun () ->
      build "shallow" ~extra:[ ("shallow_factor", 0.) ] (Index.Pts3 small_pts3));
  expect_invalid_arg "h2 rejects a 3-d dataset" (fun () ->
      build "h2" (Index.Pts3 small_pts3));
  expect_invalid_arg "h3 rejects a 2-d dataset" (fun () ->
      build "h3" (Index.Pts2 small_pts2));
  expect_invalid_arg "non-integral extra" (fun () ->
      build "quadtree" ~extra:[ ("max_depth", 2.5) ] (Index.Pts2 small_pts2))

let temp_snapshot () =
  let path = Filename.temp_file "lcsearch_registry" ".snapshot" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let sorted_rows rows =
  List.sort compare (List.map Array.to_list rows)

(* the d-dimensional scan arm shares kind "lcsearch.scan" with the 2-d
   one; saving and reloading must bring back the right variant *)
let test_scan_d_snapshot_roundtrip () =
  let ds =
    Index.PtsD (Workload.uniform_d (Workload.rng 23) ~n:64 ~dim:3 ~range:50.)
  in
  let (module M : Index.S) = Registry.find_exn "scan" in
  let t =
    M.build ~params:Index.default_params ~stats:(Emio.Io_stats.create ()) ds
  in
  let ops = Option.get M.snapshot in
  let path = temp_snapshot () in
  ops.Index.save t ~path ~meta:"" ~page_size:None;
  match
    ops.Index.load
      ~stats:(Emio.Io_stats.create ())
      ~policy:Diskstore.Buffer_pool.Lru ~cache_pages:4 path
  with
  | Error e ->
      Alcotest.failf "d-dim scan reload failed: %s"
        (Diskstore.Snapshot.error_to_string e)
  | Ok (loaded, info) ->
      Alcotest.(check string)
        "kind" ops.Index.snapshot_kind info.Diskstore.Snapshot.kind;
      let q = { Index.a0 = 10.; a = [| 0.5; -0.25 |] } in
      Alcotest.(check bool)
        "reopened d-scan = in-memory" true
        (sorted_rows (M.query loaded q) = sorted_rows (M.query t q))

(* ---- conformance: every structure vs the linear-scan oracle,
   in memory and again after a snapshot save / reopen ---- *)

let conformance_case ~kind (module M : Index.S) ~dim () =
  let n = 512 and q_count = 6 in
  let rng = Workload.rng (1000 + (17 * dim) + Hashtbl.hash M.name mod 97) in
  let ds = Workloads.dataset rng ~kind ~dim ~n (module M : Index.S) in
  let qs = Workloads.queries rng ds ~fraction:0.05 ~count:q_count in
  let stats = Emio.Io_stats.create () in
  let t = M.build ~params:Index.default_params ~stats ds in
  let (module Oracle : Index.S) = Registry.find_exn "scan" in
  let oracle = Oracle.build ~params:Index.default_params ~stats ds in
  List.iteri
    (fun i q ->
      let got = sorted_rows (M.query t q) in
      let want = sorted_rows (Oracle.query oracle q) in
      Alcotest.(check int)
        (Printf.sprintf "%s d=%d %s query %d: result count" M.name dim
           (Workloads.kind_name kind) i)
        (List.length want) (List.length got);
      Alcotest.(check bool)
        (Printf.sprintf "%s d=%d %s query %d: identical rows" M.name dim
           (Workloads.kind_name kind) i)
        true (got = want);
      Alcotest.(check int)
        (Printf.sprintf "%s d=%d %s query %d: query_count agrees" M.name dim
           (Workloads.kind_name kind) i)
        (List.length got) (M.query_count t q))
    qs;
  match M.snapshot with
  | None -> ()
  | Some ops ->
      let path = temp_snapshot () in
      ops.Index.save t ~path ~meta:"" ~page_size:None;
      (match
         ops.Index.load
           ~stats:(Emio.Io_stats.create ())
           ~policy:Diskstore.Buffer_pool.Lru ~cache_pages:8 path
       with
      | Error e ->
          Alcotest.failf "%s d=%d %s: snapshot reload failed: %s" M.name dim
            (Workloads.kind_name kind)
            (Diskstore.Snapshot.error_to_string e)
      | Ok (reopened, _) ->
          List.iteri
            (fun i q ->
              Alcotest.(check bool)
                (Printf.sprintf "%s d=%d %s query %d: reopened rows" M.name
                   dim (Workloads.kind_name kind) i)
                true
                (sorted_rows (M.query reopened q)
                = sorted_rows (Oracle.query oracle q)))
            qs)

let conformance_tests =
  List.concat_map
    (fun (module M : Index.S) ->
      List.concat_map
        (fun dim ->
          List.map
            (fun kind ->
              Alcotest.test_case
                (Printf.sprintf "%s d=%d %s" M.name dim
                   (Workloads.kind_name kind))
                `Quick
                (conformance_case ~kind (module M : Index.S) ~dim))
            [ Workloads.Uniform; Workloads.Clusters; Workloads.Diagonal ])
        M.dims)
    (Registry.all ())

let () =
  Alcotest.run "registry"
    [
      ( "registry",
        [
          Alcotest.test_case "names in Table-1 order" `Quick test_names;
          Alcotest.test_case "find / find_exn" `Quick test_find;
          Alcotest.test_case "duplicate register" `Quick
            test_duplicate_register;
          Alcotest.test_case "for_dim" `Quick test_for_dim;
          Alcotest.test_case "snapshot kinds" `Quick test_snapshot_kinds;
        ] );
      ( "errors",
        [
          Alcotest.test_case "Invalid_argument convention" `Quick
            test_error_convention;
          Alcotest.test_case "scan d-dim snapshot roundtrip" `Quick
            test_scan_d_snapshot_roundtrip;
        ] );
      ("conformance", conformance_tests);
    ]
