(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
   recorded results).

   Usage:
     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- TABLE1 F2 # run selected experiments
     dune exec bench/main.exe -- --list    # list experiment ids *)

let experiments =
  [
    ("TABLE1", "Table 1, registry-generic + BENCH_TABLE1.json", Exp_table1.table1);
    ("F1", "Figure 1: duality", Exp_figures.figure1);
    ("F2", "Figure 2: k-levels", Exp_figures.figure2);
    ("F3", "Figure 3: clusters", Exp_figures.figure3);
    ("F4", "Figure 4: greedy clustering", Exp_figures.figure4);
    ("F5", "Figure 5: query walk", Exp_figures.figure5);
    ("F6", "Figure 6: simplicial partitions", Exp_figures.figure6);
    ("S1.2", "§1.2 heuristic degradation", Exp_extra.sec12);
    ("A1", "ablation: partitioners", Exp_extra.ablation_partitioner);
    ("A2", "ablation: independent copies", Exp_extra.ablation_copies);
    ("A3", "ablation: LRU cache", Exp_extra.ablation_cache);
    ("A4", "Theorem 4.2 k sweep", Exp_extra.ablation_klowest);
    ("A5", "Theorem 4.3 k-NN sweep", Exp_extra.ablation_knn);
    ("A6", "ablation: point locators", Exp_extra.ablation_locator);
    ("A7", "ablation: shallow threshold", Exp_extra.ablation_shallow_factor);
    ("EXT1", "extension: dynamized tree", Exp_extra.ext_dynamic);
    ("EXT2", "extension: segment intersection", Exp_extra.ext_segments);
    ("EXT3", "extension: disk reporting", Exp_extra.ext_disks);
    ("EXT4", "extension: certificate tree", Exp_extra.ext_cert_tree);
    ("SHARD", "sharded out-of-core sweep + BENCH_SHARD.json", Exp_shard.run);
    ("CHURN", "LSM dynamization overhead + BENCH_CHURN.json", Exp_churn.run);
    ("TIME", "bechamel wall-clock per row", Bench_time.run);
    ("BATCH", "batch throughput + BENCH_TIME.json", Bench_time.run_batch_throughput);
    ("PERSIST", "file-backed snapshot vs in-memory", Bench_time.run_persistence);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "--list" ] ->
      List.iter (fun (id, title, _) -> Printf.printf "%-6s %s\n" id title)
        experiments
  | [] ->
      Printf.printf
        "Reproducing 'Efficient Searching with Linear Constraints'\n\
         (Agarwal, Arge, Erickson, Franciosa, Vitter; PODS'98/JCSS'00)\n\
         block size B = 64 items; I/O counts from the emio simulator.\n";
      List.iter (fun (_, _, f) -> f ()) experiments
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some (_, _, f) -> f ()
          | None -> Printf.eprintf "unknown experiment %S (try --list)\n" id)
        ids
