(* CHURN: what dynamization costs.  For each structure: build the
   static structure and its LSM-dynamized counterpart over the same
   N-point dataset, push a mixed insert/delete stream through the
   dynamized instance (spills, merges, tombstones), rebuild the static
   structure from the surviving live points, and compare model query
   I/Os over a shared query pool.

   The logarithmic method's bill is a level fan-out: a query asks
   every occupied level, so its I/O multiplies by at most the level
   count 1 + log2(N / memtable_cap) while the answer t splits across
   levels (§5 remark (iii); Nekrich's dynamic reporting pays the same
   shape).  The experiment gates io_factor — dynamized avg I/Os over
   rebuilt-static avg I/Os — against exactly that budget, and fails
   hard on overshoot or on any count mismatch with the
   rebuild-from-live oracle, so BENCH_CHURN.json doubles as a golden
   for the degradation factor.

   Environment knobs (all read by this experiment only):
     LCSEARCH_CHURN_S         comma-separated structures (default h2,ptree,h3)
     LCSEARCH_CHURN_N         dataset size              (default 8192)
     LCSEARCH_CHURN_OPS       churn operations          (default N/2)
     LCSEARCH_CHURN_MEMTABLE  memtable capacity         (default 64)
     LCSEARCH_CHURN_QUERIES   query-pool size           (default 32)
     LCSEARCH_CHURN_FRACTION  query selectivity         (default 0.02)
     LCSEARCH_CHURN_SLACK     budget multiplier         (default 1.0)
     LCSEARCH_CHURN_OUT       output path (default BENCH_CHURN.json) *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Lsm = Lcsearch_index.Lsm

let env_int key default =
  match Option.bind (Sys.getenv_opt key) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let env_float key default =
  match Option.bind (Sys.getenv_opt key) float_of_string_opt with
  | Some v when v > 0. -> v
  | _ -> default

let structure_names () =
  match Sys.getenv_opt "LCSEARCH_CHURN_S" with
  | Some s when s <> "" ->
      List.filter (fun n -> n <> "") (String.split_on_char ',' s)
  | _ -> [ "h2"; "ptree"; "h3" ]

let json_path () =
  match Sys.getenv_opt "LCSEARCH_CHURN_OUT" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_CHURN.json"

let rows_of_dataset ds =
  Array.init (Index.dataset_length ds) (fun i ->
      match ds with
      | Index.Pts2 pts -> [| Geom.Point2.x pts.(i); Geom.Point2.y pts.(i) |]
      | Index.Pts3 pts ->
          [|
            Geom.Point3.x pts.(i); Geom.Point3.y pts.(i); Geom.Point3.z pts.(i);
          |]
      | Index.PtsD pts -> Array.copy pts.(i))

let dataset_of_rows (module M : Index.S) ~dim rows =
  match M.preferred ~dim with
  | `Pts2 -> Index.Pts2 (Array.map (fun r -> Geom.Point2.make r.(0) r.(1)) rows)
  | `Pts3 ->
      Index.Pts3 (Array.map (fun r -> Geom.Point3.make r.(0) r.(1) r.(2)) rows)
  | `PtsD -> Index.PtsD (Array.map Array.copy rows)

let live_bbox ~dim rows =
  let lo = Array.make dim infinity and hi = Array.make dim neg_infinity in
  Array.iter
    (fun r ->
      for j = 0 to dim - 1 do
        if r.(j) < lo.(j) then lo.(j) <- r.(j);
        if r.(j) > hi.(j) then hi.(j) <- r.(j)
      done)
    rows;
  for j = 0 to dim - 1 do
    if not (lo.(j) <= hi.(j)) then begin
      lo.(j) <- 0.;
      hi.(j) <- 100.
    end
    else if hi.(j) -. lo.(j) < 1e-6 then hi.(j) <- lo.(j) +. 1e-6
  done;
  (lo, hi)

type row = {
  c_name : string;
  c_levels : int;
  c_live : int;
  c_merges : int;
  c_update_ios_per_op : float;
  c_static_io : float;
  c_lsm_io : float;
  c_factor : float;
  c_budget : float;
  c_avg_t : int;
  c_mismatches : int;
}

(* Average model I/Os per query through a fresh cost context; counts
   are returned alongside so the caller can gate lsm == oracle. *)
let measure_queries inst qs =
  let ctx = Emio.Cost_ctx.create () in
  let reads = ref 0 and counts = Array.make (Array.length qs) 0 in
  Array.iteri
    (fun i q ->
      Emio.Cost_ctx.reset ctx;
      counts.(i) <-
        Emio.Cost_ctx.with_ctx ctx (fun () -> Index.query_count inst q);
      reads := !reads + Emio.Cost_ctx.reads ctx)
    qs;
  (float_of_int !reads /. float_of_int (max 1 (Array.length qs)), counts)

let measure_one (module M : Index.S) ~n ~ops ~memtable_cap ~queries ~fraction
    ~slack ~seed =
  let dim = List.hd M.dims in
  let rng = Workload.rng (seed + n) in
  let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n (module M : Index.S) in
  let qs = Array.of_list (Workloads.queries rng ds ~fraction ~count:queries) in
  let base = rows_of_dataset ds in
  (* The dynamized side: bulk build, then the churn stream (spills,
     merges, tombstones) against an exact (handle -> row) model. *)
  let (module L : Index.S) =
    Lsm.make ~memtable_cap ~inner:(module M : Index.S) ()
  in
  let stats = Emio.Io_stats.create () in
  let inst = Index.build (module L : Index.S) ~params:Index.default_params ~stats ds in
  let u = Option.get (Index.updater inst) in
  let build_ios = Emio.Io_stats.total stats in
  let model = Hashtbl.create (2 * n) in
  Array.iteri (fun h r -> Hashtbl.replace model h r) base;
  let vec = ref (Array.init n Fun.id) in
  let len = ref n in
  let lo, hi = live_bbox ~dim base in
  for _ = 1 to ops do
    if !len = 0 || Random.State.float rng 1. < 0.5 then begin
      let r = Array.make dim 0. in
      for j = 0 to dim - 1 do
        r.(j) <- lo.(j) +. Random.State.float rng (hi.(j) -. lo.(j))
      done;
      let h = u.Index.u_insert r in
      Hashtbl.replace model h r;
      if !len = Array.length !vec then begin
        let bigger = Array.make (2 * !len) 0 in
        Array.blit !vec 0 bigger 0 !len;
        vec := bigger
      end;
      !vec.(!len) <- h;
      incr len
    end
    else begin
      let i = Random.State.int rng !len in
      let h = !vec.(i) in
      if not (u.Index.u_delete h) then
        failwith (Printf.sprintf "%s: delete of live handle %d refused" M.name h);
      Hashtbl.remove model h;
      !vec.(i) <- !vec.(!len - 1);
      decr len
    end
  done;
  (* Spill/merge rebuilds charge the instance's stats sink (reads and
     writes both model I/Os); the delta over the churn is the
     amortized update cost. *)
  let update_ios = Emio.Io_stats.total stats - build_ios in
  let counters = Index.counters inst in
  let counter k = Option.value ~default:0 (List.assoc_opt k counters) in
  (* The static side, rebuilt from exactly the surviving points. *)
  let live_rows = Array.init !len (fun i -> Hashtbl.find model !vec.(i)) in
  let ods = dataset_of_rows (module M : Index.S) ~dim live_rows in
  let rstats = Emio.Io_stats.create () in
  let oracle =
    Index.build (module M : Index.S) ~params:Index.default_params ~stats:rstats
      ods
  in
  let lsm_io, lsm_counts = measure_queries inst qs in
  let static_io, static_counts = measure_queries oracle qs in
  let mismatches = ref 0 in
  Array.iteri
    (fun i c -> if c <> static_counts.(i) then incr mismatches)
    lsm_counts;
  let budget =
    slack *. (1. +. (log (float_of_int n /. float_of_int memtable_cap) /. log 2.))
  in
  {
    c_name = M.name;
    c_levels = counter "levels";
    c_live = !len;
    c_merges = counter "merges";
    c_update_ios_per_op = float_of_int update_ios /. float_of_int (max 1 ops);
    c_static_io = static_io;
    c_lsm_io = lsm_io;
    c_factor = lsm_io /. Float.max 1. static_io;
    c_budget = budget;
    c_avg_t =
      Array.fold_left ( + ) 0 lsm_counts / max 1 (Array.length lsm_counts);
    c_mismatches = !mismatches;
  }

let json_of rows ~n ~ops ~memtable_cap ~queries ~fraction ~seed =
  let row r =
    Printf.sprintf
      "{\"structure\": \"%s\", \"levels\": %d, \"live\": %d, \"merges\": %d, \
       \"update_ios_per_op\": %.2f, \"static_io\": %.2f, \"lsm_io\": %.2f, \
       \"io_factor\": %.3f, \"io_budget\": %.3f, \"avg_t\": %d, \
       \"mismatches\": %d}"
      r.c_name r.c_levels r.c_live r.c_merges r.c_update_ios_per_op
      r.c_static_io r.c_lsm_io r.c_factor r.c_budget r.c_avg_t r.c_mismatches
  in
  String.concat ""
    [
      "{\n";
      Printf.sprintf "  \"n\": %d,\n" n;
      Printf.sprintf "  \"ops\": %d,\n" ops;
      Printf.sprintf "  \"memtable_cap\": %d,\n" memtable_cap;
      Printf.sprintf "  \"queries\": %d,\n" queries;
      Printf.sprintf "  \"fraction\": %g,\n" fraction;
      Printf.sprintf "  \"seed\": %d,\n" seed;
      "  \"rows\": [\n    ";
      String.concat ",\n    " (List.map row rows);
      "\n  ]\n}\n";
    ]

let run () =
  Util.section "CHURN"
    "dynamization overhead: churned LSM vs static rebuild over live points";
  let n = env_int "LCSEARCH_CHURN_N" 8192 in
  let ops = env_int "LCSEARCH_CHURN_OPS" (n / 2) in
  let memtable_cap = env_int "LCSEARCH_CHURN_MEMTABLE" Lsm.default_memtable_cap in
  let queries = env_int "LCSEARCH_CHURN_QUERIES" 32 in
  let fraction = env_float "LCSEARCH_CHURN_FRACTION" 0.02 in
  let slack = env_float "LCSEARCH_CHURN_SLACK" 1.0 in
  let seed = 7211 in
  Printf.printf
    "  N=%d, %d ops, memtable %d, %d queries at %.3f selectivity\n" n ops
    memtable_cap queries fraction;
  Printf.printf "  %-8s %7s %7s %7s %10s %10s %10s %9s %9s %7s\n" "name"
    "levels" "live" "merges" "upd IO/op" "static IO" "lsm IO" "factor"
    "budget" "avg t";
  let rows =
    List.map
      (fun name ->
        let (module M : Index.S) =
          match Registry.find name with
          | Some m -> m
          | None -> failwith (Printf.sprintf "unknown structure %S" name)
        in
        let r =
          measure_one
            (module M : Index.S)
            ~n ~ops ~memtable_cap ~queries ~fraction ~slack ~seed
        in
        Printf.printf
          "  %-8s %7d %7d %7d %10.2f %10.2f %10.2f %9.3f %9.3f %7d\n%!"
          r.c_name r.c_levels r.c_live r.c_merges r.c_update_ios_per_op
          r.c_static_io r.c_lsm_io r.c_factor r.c_budget r.c_avg_t;
        r)
      (structure_names ())
  in
  let path = json_path () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (json_of rows ~n ~ops ~memtable_cap ~queries ~fraction ~seed));
  Printf.printf "\nwrote %d rows to %s\n" (List.length rows) path;
  let bad =
    List.filter (fun r -> r.c_mismatches > 0 || r.c_factor > r.c_budget) rows
  in
  if bad <> [] then
    failwith
      (String.concat "; "
         (List.map
            (fun r ->
              if r.c_mismatches > 0 then
                Printf.sprintf
                  "%s: %d query counts differ from the rebuild-from-live \
                   oracle"
                  r.c_name r.c_mismatches
              else
                Printf.sprintf
                  "%s: io_factor %.3f exceeds the log-level budget %.3f"
                  r.c_name r.c_factor r.c_budget)
            bad))
