(* The §1.2 comparison experiment and the ablations (A1-A5). *)

open Geom

let block_size = 64

(* ---- S1.2: heuristic structures vs the §3 structure ------------------ *)

let sec12 () =
  Util.section "S1.2"
    "§1.2 — heuristic indexes degrade to Θ(n); the §3 structure does not";
  let module Index = Lcsearch_index.Index in
  let module Registry = Lcsearch_index.Registry in
  let module Query_engine = Lcsearch_index.Query_engine in
  let n_pts = 16384 in
  let n = Util.blocks ~block_size n_pts in
  let rng = Workload.rng 3001 in
  (* Every registered 2-d structure over the same point set and the
     same single query — the §1.2 story told generically. *)
  let run name points (q : Index.query) =
    Printf.printf "\n%s  (N=%d, n=%d, query y <= %gx%+g):\n" name n_pts n
      q.a.(0) q.a0;
    Printf.printf "  %-14s %8s %8s %8s\n" "structure" "IOs" "t" "space";
    List.iter
      (fun (module M : Index.S) ->
        let stats = Emio.Io_stats.create () in
        let inst =
          Index.build
            (module M : Index.S)
            ~params:Index.default_params ~stats (Index.Pts2 points)
        in
        let cost = Query_engine.run_query inst q in
        Printf.printf "  %-14s %8d %8d %8d\n" M.name cost.Query_engine.reads
          cost.Query_engine.result (Index.space_blocks inst))
      (Registry.for_dim 2)
  in
  let uniform = Workload.uniform2 rng ~n:n_pts ~range:100. in
  let slope, icept =
    Workload.halfplane_with_selectivity rng uniform ~fraction:0.01
  in
  run "uniform points" uniform { Index.a0 = icept; a = [| slope |] };
  let diagonal = Workload.diagonal2 rng ~n:n_pts ~jitter:0.01 ~range:100. in
  run "diagonal adversary" diagonal { Index.a0 = -0.02; a = [| 1.0 |] }

(* ---- A1: partitioner ablation ---------------------------------------- *)

let ablation_partitioner () =
  Util.section "A1" "Ablation — kd boxes vs bounding simplices in the §5 tree";
  let rng = Workload.rng 3002 in
  let n_pts = 32768 and dim = 3 in
  let points = Workload.uniform_d rng ~n:n_pts ~dim ~range:50. in
  Printf.printf "%-12s %8s %8s %8s %9s\n" "partitioner" "avg t" "avg IO"
    "visited" "space/n";
  List.iter
    (fun (name, kind) ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Partition_tree.build ~stats ~block_size ~partitioner:kind ~dim
          points
      in
      let n = Util.blocks ~block_size n_pts in
      let visited = ref 0 in
      let queries =
        List.init 25 (fun _ ->
            let a0, a =
              Workload.halfspace_d_with_selectivity rng points ~fraction:0.01
            in
            fun () ->
              let r =
                List.length (Core.Partition_tree.query_halfspace t ~a0 ~a)
              in
              visited := !visited + Core.Partition_tree.last_visited_nodes t;
              r)
      in
      let avg_io, _, avg_t = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%-12s %8.1f %8.1f %8.1f %9.2f\n" name avg_t avg_io
        (float_of_int !visited /. 25.)
        (float_of_int (Core.Partition_tree.space_blocks t) /. float_of_int n))
    [
      ("kd", Core.Partition_tree.Kd);
      ("simplicial", Core.Partition_tree.Simplicial);
      ("shallow", Core.Partition_tree.Shallow);
    ]

(* ---- A2: one copy vs three copies (§4 footnote 9) -------------------- *)

let ablation_copies () =
  Util.section "A2" "Ablation — 1 vs 3 independent §4.1 structures (fn. 9)";
  let rng = Workload.rng 3003 in
  let n_pts = 8192 in
  let planes =
    Array.init n_pts (fun _ ->
        Plane3.make
          ~a:(Random.State.float rng 4. -. 2.)
          ~b:(Random.State.float rng 4. -. 2.)
          ~c:(Random.State.float rng 40. -. 20.))
  in
  Printf.printf "%8s %8s %8s %8s %10s %10s\n" "copies" "avg IO" "max IO"
    "space" "space/n" "fallbacks";
  List.iter
    (fun copies ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Lowest_planes.build ~stats ~block_size ~copies
          ~clip:(-50., -50., 50., 50.) planes
      in
      let queries =
        List.init 60 (fun _ ->
            let x = Random.State.float rng 80. -. 40.
            and y = Random.State.float rng 80. -. 40. in
            fun () ->
              List.length (Core.Lowest_planes.k_lowest t ~x ~y ~k:256))
      in
      let avg_io, max_io, _ = Util.measure_queries ~stats ~block_size queries in
      let n = Util.blocks ~block_size n_pts in
      Printf.printf "%8d %8.1f %8d %8d %10.1f %10d\n" copies avg_io max_io
        (Core.Lowest_planes.space_blocks t)
        (float_of_int (Core.Lowest_planes.space_blocks t) /. float_of_int n)
        (Core.Lowest_planes.fallbacks t))
    [ 1; 2; 3 ]

(* ---- A3: LRU cache sweep ---------------------------------------------- *)

let ablation_cache () =
  Util.section "A3" "Ablation — LRU cache (memory size M/B) on §3 queries";
  let rng = Workload.rng 3004 in
  let n_pts = 16384 in
  let points = Workload.uniform2 rng ~n:n_pts ~range:100. in
  Printf.printf "%12s %8s %8s %10s\n" "cache blocks" "avg IO" "hits/query"
    "reduction";
  let cold = ref 0. in
  List.iter
    (fun cache_blocks ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Halfspace2d.build ~stats ~block_size ~cache_blocks points
      in
      let trials = 50 in
      Emio.Io_stats.reset stats;
      for _ = 1 to trials do
        let slope, icept =
          Workload.halfplane_with_selectivity rng points ~fraction:0.02
        in
        ignore (Core.Halfspace2d.query_count t ~slope ~icept)
      done;
      let avg =
        float_of_int (Emio.Io_stats.reads stats) /. float_of_int trials
      in
      let hits =
        float_of_int (Emio.Io_stats.cache_hits stats) /. float_of_int trials
      in
      if cache_blocks = 0 then cold := avg;
      Printf.printf "%12d %8.1f %8.1f %9.0f%%\n" cache_blocks avg hits
        (100. *. (1. -. (avg /. max 1. !cold))))
    [ 0; 8; 64; 256; 1024 ]

(* ---- A4: Theorem 4.2, k sweep ----------------------------------------- *)

let ablation_klowest () =
  Util.section "A4" "Theorem 4.2 — k-lowest-planes, I/Os vs k";
  let rng = Workload.rng 3005 in
  let n_pts = 8192 in
  let planes =
    Array.init n_pts (fun _ ->
        Plane3.make
          ~a:(Random.State.float rng 4. -. 2.)
          ~b:(Random.State.float rng 4. -. 2.)
          ~c:(Random.State.float rng 40. -. 20.))
  in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Lowest_planes.build ~stats ~block_size ~clip:(-50., -50., 50., 50.)
      planes
  in
  Printf.printf "%8s %8s %8s %8s\n" "k" "k/B" "avg IO" "max IO";
  List.iter
    (fun k ->
      let queries =
        List.init 40 (fun _ ->
            let x = Random.State.float rng 80. -. 40.
            and y = Random.State.float rng 80. -. 40. in
            fun () -> List.length (Core.Lowest_planes.k_lowest t ~x ~y ~k))
      in
      let avg_io, max_io, _ = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%8d %8d %8.1f %8d\n" k (k / block_size) avg_io max_io)
    [ 16; 64; 256; 1024; 4096 ]

(* ---- A5: Theorem 4.3, k-NN sweep with exactness check ----------------- *)

let ablation_knn () =
  Util.section "A5" "Theorem 4.3 — k nearest neighbors via lifting";
  let rng = Workload.rng 3006 in
  let n_pts = 8192 in
  let points = Workload.uniform2 rng ~n:n_pts ~range:50. in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Knn.build ~stats ~block_size ~clip:(-80., -80., 80., 80.) points
  in
  Printf.printf "%8s %8s %8s %8s\n" "k" "avg IO" "max IO" "exact";
  List.iter
    (fun k ->
      let exact = ref true in
      let queries =
        List.init 25 (fun _ ->
            let q =
              Point2.make
                (Random.State.float rng 100. -. 50.)
                (Random.State.float rng 100. -. 50.)
            in
            fun () ->
              let got = Core.Knn.nearest t q ~k in
              (* verify against brute force *)
              let dists = Array.map (fun p -> Point2.dist q p) points in
              Array.sort Float.compare dists;
              List.iteri
                (fun i (_, d) ->
                  if Float.abs (d -. dists.(i)) > 1e-6 then exact := false)
                got;
              List.length got)
      in
      let avg_io, max_io, _ = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%8d %8.1f %8d %8s\n" k avg_io max_io
        (if !exact then "yes" else "NO!"))
    [ 1; 8; 64; 256 ]



(* ---- A6: grid vs segment-tree point location in the §4 structure ------ *)

let ablation_locator () =
  Util.section "A6" "Ablation — grid vs worst-case seg-tree point location (§4.1)";
  let rng = Workload.rng 3007 in
  let n_pts = 8192 in
  let planes =
    Array.init n_pts (fun _ ->
        Plane3.make
          ~a:(Random.State.float rng 4. -. 2.)
          ~b:(Random.State.float rng 4. -. 2.)
          ~c:(Random.State.float rng 40. -. 20.))
  in
  Printf.printf "%-10s %8s %8s %8s %10s\n" "locator" "avg IO" "max IO" "space"
    "space/n";
  List.iter
    (fun (name, use_segtree) ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Lowest_planes.build ~stats ~block_size ~use_segtree
          ~clip:(-50., -50., 50., 50.) planes
      in
      let queries =
        List.init 50 (fun _ ->
            let x = Random.State.float rng 80. -. 40.
            and y = Random.State.float rng 80. -. 40. in
            fun () -> List.length (Core.Lowest_planes.k_lowest t ~x ~y ~k:128))
      in
      let avg_io, max_io, _ = Util.measure_queries ~stats ~block_size queries in
      let n = Util.blocks ~block_size n_pts in
      Printf.printf "%-10s %8.1f %8d %8d %10.1f\n" name avg_io max_io
        (Core.Lowest_planes.space_blocks t)
        (float_of_int (Core.Lowest_planes.space_blocks t) /. float_of_int n))
    [ ("grid", false); ("segtree", true) ]

(* ---- EXT1: the dynamized partition tree (§7 open problem 1) ----------- *)

let ext_dynamic () =
  Util.section "EXT1"
    "Extension — dynamized §5 tree via the LSM layer (remark (iii), open \
     problem 1)";
  let module Index = Lcsearch_index.Index in
  let rng = Workload.rng 3008 in
  let stats = Emio.Io_stats.create () in
  let (module L : Index.S) =
    Lcsearch_index.Lsm.make ~inner:(Lcsearch_index.Registry.find_exn "ptree") ()
  in
  let t =
    L.build ~params:{ Index.default_params with block_size } ~stats
      (Index.Pts2 [||])
  in
  let inst = Index.Instance ((module L), t) in
  let u = Option.get (Index.updater inst) in
  let counter k =
    Option.value ~default:0 (List.assoc_opt k (Index.counters inst))
  in
  let n = 16384 in
  for _ = 1 to n do
    ignore
      (u.Index.u_insert
         [| Random.State.float rng 200. -. 100.;
            Random.State.float rng 200. -. 100. |])
  done;
  let insert_io = Emio.Io_stats.total stats in
  Printf.printf
    "%d inserts: %.1f amortized I/Os each, %d level merges, %d levels\n" n
    (float_of_int insert_io /. float_of_int n)
    (counter "merges") (counter "levels");
  (* query I/Os mirror into the installed cost context, regardless of
     which private sink each level's store charges *)
  let ctx = Emio.Cost_ctx.create () in
  let query () =
    let a0 = Random.State.float rng 200. -. 100.
    and a = [| Random.State.float rng 2. -. 1. |] in
    Emio.Cost_ctx.reset ctx;
    let t_count =
      Emio.Cost_ctx.with_ctx ctx (fun () ->
          Index.query_count inst { Index.a0; a })
    in
    (Emio.Cost_ctx.reads ctx, Util.blocks ~block_size t_count)
  in
  let measured = ref [] in
  for _ = 1 to 30 do
    measured := query () :: !measured
  done;
  let measured = !measured in
  let avg_io, max_io = Util.summarize (List.map fst measured) in
  let avg_t, _ = Util.summarize (List.map snd measured) in
  Printf.printf "queries: avg %.1f I/Os (max %d) for avg t = %.0f blocks\n"
    avg_io max_io avg_t;
  (* delete half, query again *)
  let io_before_deletes = Emio.Io_stats.total stats in
  for h = 0 to (n / 2) - 1 do
    ignore (u.Index.u_delete (2 * h))
  done;
  Printf.printf
    "%d deletes: %.1f amortized I/Os each; %d live, space %d blocks\n" (n / 2)
    (float_of_int (Emio.Io_stats.total stats - io_before_deletes)
    /. float_of_int (n / 2))
    (u.Index.u_live ())
    (Index.space_blocks inst)

(* ---- EXT2: segment intersection queries (§7 open problem 2) ----------- *)

let ext_segments () =
  Util.section "EXT2"
    "Extension — segment intersection searching (open problem 2)";
  let rng = Workload.rng 3009 in
  Printf.printf "%8s %6s %8s %8s %8s %10s\n" "N" "n" "avg t" "avg IO"
    "max IO" "space/n";
  List.iter
    (fun n_segs ->
      let segments =
        Array.init n_segs (fun _ ->
            let cx = Random.State.float rng 400. -. 200.
            and cy = Random.State.float rng 400. -. 200. in
            let len = 0.5 +. Random.State.float rng 3. in
            let ang = Random.State.float rng (2. *. Float.pi) in
            ( Geom.Point2.make cx cy,
              Geom.Point2.make (cx +. (len *. cos ang)) (cy +. (len *. sin ang))
            ))
      in
      let stats = Emio.Io_stats.create () in
      let t = Core.Seg_intersect.build ~stats ~block_size segments in
      let n = Util.blocks ~block_size n_segs in
      let queries =
        List.init 20 (fun _ ->
            let cx = Random.State.float rng 300. -. 150.
            and cy = Random.State.float rng 300. -. 150. in
            let qa = Geom.Point2.make cx cy
            and qb = Geom.Point2.make (cx +. 10.) (cy +. 6.) in
            fun () -> List.length (Core.Seg_intersect.query t qa qb))
      in
      let avg_io, max_io, avg_t = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%8d %6d %8.1f %8.1f %8d %10.1f\n" n_segs n avg_t avg_io
        max_io
        (float_of_int (Core.Seg_intersect.space_blocks t) /. float_of_int n))
    [ 4096; 8192; 16384; 32768 ]

(* ---- EXT3: circular range reporting via lifting ------------------------ *)

let ext_disks () =
  Util.section "EXT3" "Extension — disk range reporting via the lifting map";
  let rng = Workload.rng 3010 in
  let n_pts = 8192 in
  let points = Workload.uniform2 rng ~n:n_pts ~range:50. in
  let stats = Emio.Io_stats.create () in
  let t =
    Core.Disk_range.build ~stats ~block_size ~clip:(-80., -80., 80., 80.)
      points
  in
  Printf.printf "%8s %8s %8s %8s\n" "radius" "avg T" "avg IO" "max IO";
  List.iter
    (fun radius ->
      let total_t = ref 0 in
      let queries =
        List.init 30 (fun _ ->
            let center =
              Geom.Point2.make
                (Random.State.float rng 80. -. 40.)
                (Random.State.float rng 80. -. 40.)
            in
            fun () ->
              let r = Core.Disk_range.query_count t ~center ~radius in
              total_t := !total_t + r;
              r)
      in
      let avg_io, max_io, _ = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%8.1f %8.1f %8.1f %8d\n" radius
        (float_of_int !total_t /. 30.)
        avg_io max_io)
    [ 2.; 8.; 20.; 40. ]


(* ---- A7: the beta log r threshold of the shallow tree (§6) ------------ *)

let ablation_shallow_factor () =
  Util.section "A7" "Ablation — the crossing threshold beta of the §6 tree";
  let rng = Workload.rng 3011 in
  let n_pts = 32768 in
  let points = Workload.uniform_d rng ~n:n_pts ~dim:3 ~range:50. in
  Printf.printf "%8s %8s %8s %12s\n" "factor" "avg t" "avg IO" "secondary";
  List.iter
    (fun factor ->
      let stats = Emio.Io_stats.create () in
      let t =
        Core.Shallow_tree.build ~stats ~block_size ~shallow_factor:factor
          ~dim:3 points
      in
      let secondary = ref 0 in
      let queries =
        List.init 25 (fun _ ->
            let a0, a =
              Workload.halfspace_d_with_selectivity rng points ~fraction:0.01
            in
            fun () ->
              let r = List.length (Core.Shallow_tree.query_halfspace t ~a0 ~a) in
              secondary := !secondary + Core.Shallow_tree.last_secondary_uses t;
              r)
      in
      let avg_io, _, avg_t = Util.measure_queries ~stats ~block_size queries in
      Printf.printf "%8.1f %8.1f %8.1f %12d\n" factor avg_t avg_io !secondary)
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Printf.printf
    "(small factor: everything looks non-shallow and bails to the §5\n\
    \ secondaries; large factor: the shallow path absorbs all queries)\n"


(* ---- EXT4: certificate-enhanced tree vs the §5/§6 trees --------------- *)

let ext_cert_tree () =
  Util.section "EXT4"
    "Extension — certificate tree: output-sensitive 3-D halfspace reporting";
  let rng = Workload.rng 3012 in
  Printf.printf "%8s %8s %6s | %18s | %10s | %18s\n" "N" "slope" "T"
    "§5 tree (IO/visit)" "§6 shallow" "certificate tree";
  List.iter
    (fun n_pts ->
      let points3 =
        Array.init n_pts (fun _ ->
            Geom.Point3.make
              (Random.State.float rng 100. -. 50.)
              (Random.State.float rng 100. -. 50.)
              (Random.State.float rng 100. -. 50.))
      in
      let coords =
        Array.map
          (fun p -> [| Geom.Point3.x p; Geom.Point3.y p; Geom.Point3.z p |])
          points3
      in
      let s1 = Emio.Io_stats.create ()
      and s2 = Emio.Io_stats.create ()
      and s3 = Emio.Io_stats.create () in
      let pt = Core.Partition_tree.build ~stats:s1 ~block_size ~dim:3 coords in
      let sh = Core.Shallow_tree.build ~stats:s2 ~block_size ~dim:3 coords in
      let ct = Core.Cert_tree.build ~stats:s3 ~block_size points3 in
      (* fixed small output T = 64; steep query planes slice through
         every column of the box, so cell-based classification
         degenerates while point-set certificates stay exact *)
      List.iter
        (fun steep ->
          let a = [| steep; -.steep *. 0.8 |] in
          let residuals =
            Array.map
              (fun p ->
                Geom.Point3.z p
                -. (a.(0) *. Geom.Point3.x p)
                -. (a.(1) *. Geom.Point3.y p))
              points3
          in
          Array.sort Float.compare residuals;
          let a0 = residuals.(63) in
          Emio.Io_stats.reset s1;
          let t1 = List.length (Core.Partition_tree.query_halfspace pt ~a0 ~a) in
          let io1 = Emio.Io_stats.reads s1
          and v1 = Core.Partition_tree.last_visited_nodes pt in
          Emio.Io_stats.reset s2;
          ignore (Core.Shallow_tree.query_halfspace sh ~a0 ~a);
          let io2 = Emio.Io_stats.reads s2 in
          Emio.Io_stats.reset s3;
          ignore (Core.Cert_tree.query_count ct ~a0 ~a);
          let io3 = Emio.Io_stats.reads s3
          and v3 = Core.Cert_tree.last_visited_nodes ct in
          Printf.printf "%8d %8.1f %6d | %10d / %5d | %10d | %10d / %5d\n"
            n_pts steep t1 io1 v1 io2 io3 v3)
        [ 0.4; 2.; 8. ])
    [ 16384; 65536 ];
  Printf.printf
    "(uniform data lets every tree off lightly: shallow planes hug a\n\
    \ corner of the box.  The adversary below does not.)\n";
  (* 3-D analogue of the §1.2 diagonal: points in a thin slab around
     z = x; a plane parallel to the slab and slightly below its median
     crosses almost every kd box while reporting few points *)
  let n_pts = 16384 in
  let jitter = 0.5 in
  let slab =
    Array.init n_pts (fun _ ->
        let x = Random.State.float rng 200. -. 100.
        and y = Random.State.float rng 200. -. 100. in
        Geom.Point3.make x y (x +. Random.State.float rng jitter))
  in
  let coords =
    Array.map
      (fun p -> [| Geom.Point3.x p; Geom.Point3.y p; Geom.Point3.z p |])
      slab
  in
  let s1 = Emio.Io_stats.create () and s3 = Emio.Io_stats.create () in
  let pt = Core.Partition_tree.build ~stats:s1 ~block_size ~dim:3 coords in
  let ct = Core.Cert_tree.build ~stats:s3 ~block_size slab in
  let a = [| 1.; 0. |] and a0 = -0.02 *. jitter in
  Emio.Io_stats.reset s1;
  let t1 = List.length (Core.Partition_tree.query_halfspace pt ~a0 ~a) in
  let io1 = Emio.Io_stats.reads s1 in
  Emio.Io_stats.reset s3;
  let t3 = Core.Cert_tree.query_count ct ~a0 ~a in
  let io3 = Emio.Io_stats.reads s3 in
  Printf.printf
    "slab adversary (N=%d, n=%d blocks, T=%d=%d):\n\
    \  §5 tree %d I/Os, certificate tree %d I/Os\n"
    n_pts (Util.blocks ~block_size n_pts) t1 t3 io1 io3

let all () =
  sec12 ();
  ablation_partitioner ();
  ablation_copies ();
  ablation_cache ();
  ablation_klowest ();
  ablation_knn ();
  ablation_locator ();
  ablation_shallow_factor ();
  ext_dynamic ();
  ext_segments ();
  ext_disks ();
  ext_cert_tree ()
