(* SHARD: out-of-core scale sweep over the sharded scatter-gather
   layer (Lcsearch_index.Shard).  For each (N, K) cell: partition the
   dataset into K shards, build the K inner structures in parallel on
   the domain pool, persist the sharded snapshot to disk, reopen it on
   the *file backend* with a cold buffer pool whose page budget is
   split across the shards, and measure query-time page faults — the
   regime the paper's n/B bounds are actually about, far past where
   everything fits in cache.

   The query pool is generated once per N and shared by every K, so
   the curves differ only in sharding.  Selectivity calibration sorts
   an N-sized residual array per query (Workload.quantile), which is
   why the pool stays small at N = 10^7.

   Environment knobs (all read by this experiment only):
     LCSEARCH_SHARD_S          structure name        (default rtree —
                               sort-based O(n log n) build; h2's layer
                               construction is superlinear and does
                               not reach 10^7)
     LCSEARCH_SHARD_NS         comma-separated N ladder
                               (default 100000,1000000,10000000)
     LCSEARCH_SHARD_KS         comma-separated shard counts
                               (default 1,4,16)
     LCSEARCH_SHARD_PARTITION  str | hash            (default str)
     LCSEARCH_SHARD_QUERIES    queries per N         (default 16)
     LCSEARCH_SHARD_FRACTION   query selectivity     (default 0.01)
     LCSEARCH_SHARD_CACHE      total buffer-pool pages, split across
                               shards on reopen      (default 512)
     LCSEARCH_SHARD_DOMAINS    build fan-out         (default: the Par
                               pool's recommendation)
     LCSEARCH_SHARD_OUT        output path (default BENCH_SHARD.json) *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads
module Query_engine = Lcsearch_index.Query_engine
module Shard = Lcsearch_index.Shard
module Par = Lcsearch_index.Par

let env_int key default =
  match Option.bind (Sys.getenv_opt key) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let env_float key default =
  match Option.bind (Sys.getenv_opt key) float_of_string_opt with
  | Some v when v > 0. -> v
  | _ -> default

let env_ints key default =
  match Sys.getenv_opt key with
  | None -> default
  | Some s -> (
      match
        List.filter_map int_of_string_opt (String.split_on_char ',' s)
      with
      | [] -> default
      | vs -> vs)

let structure_name () =
  match Sys.getenv_opt "LCSEARCH_SHARD_S" with
  | Some s when s <> "" -> s
  | _ -> "rtree"

let partition () =
  match
    Option.bind (Sys.getenv_opt "LCSEARCH_SHARD_PARTITION")
      Shard.partition_of_string
  with
  | Some p -> p
  | None -> Shard.Str

let json_path () =
  match Sys.getenv_opt "LCSEARCH_SHARD_OUT" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_SHARD.json"

(* One temp directory per cell, recursively removed afterwards so a
   10^7 sweep does not accumulate hundreds of MB of snapshots. *)
let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_bytes path =
  Array.fold_left
    (fun acc f ->
      acc + (Unix.stat (Filename.concat path f)).Unix.st_size)
    0 (Sys.readdir path)

type row = {
  r_n : int;
  r_shards : int;
  r_build_s : float;
  r_build_ios : int;
  r_space_blocks : int;
  r_snapshot_bytes : int;
  r_load_s : float;
  r_avg_faults : float;
  r_p95_faults : int;
  r_words_per_query : float;
  r_avg_t : int;
  r_us_per_query : float;
  r_avg_pruned : float;
}

let measure_cell (module M : Index.S) ~partition ~build_domains ~cache_pages
    ~qs ds ~n ~k =
  let (module Sh : Index.S) =
    Shard.make ~build_domains ~inner:(module M : Index.S) ~shards:k ~partition
      ()
  in
  let stats = Emio.Io_stats.create () in
  let bctx = Emio.Cost_ctx.create () in
  let t0 = Unix.gettimeofday () in
  let t =
    Emio.Store.with_cache_split ~shards:k ~domains:build_domains (fun () ->
        Emio.Cost_ctx.with_ctx bctx (fun () ->
            Sh.build ~params:Index.default_params ~stats ds))
  in
  let build_s = Unix.gettimeofday () -. t0 in
  let space_blocks = Sh.space_blocks t in
  let ops = Option.get Sh.snapshot in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcsearch_shard_%d_%d_%d" n k (Unix.getpid ()))
  in
  remove_tree dir;
  ops.Index.save t ~path:dir ~meta:"" ~page_size:None;
  let snapshot_bytes = dir_bytes dir in
  (* Reopen on the file backend: a fresh process-like view, page
     budget split across the K shard pools, pool cold apart from the
     load-time verification sweep (whose stats we drop). *)
  let fstats = Emio.Io_stats.create () in
  let t0 = Unix.gettimeofday () in
  let inst =
    match Shard.open_snapshot ~cache_pages ~stats:fstats dir with
    | Ok (inst, _info, _m) -> inst
    | Error e ->
        remove_tree dir;
        failwith (dir ^ ": " ^ Diskstore.Snapshot.error_to_string e)
  in
  let load_s = Unix.gettimeofday () -. t0 in
  let qctx = Emio.Cost_ctx.create () in
  let faults = ref [] and words = ref 0 and total_t = ref 0 in
  let pruned = ref 0 in
  let t0 = Unix.gettimeofday () in
  Array.iter
    (fun q ->
      Emio.Cost_ctx.reset qctx;
      let cnt =
        Emio.Cost_ctx.with_ctx qctx (fun () -> Index.query_count inst q)
      in
      total_t := !total_t + cnt;
      faults := Emio.Cost_ctx.reads qctx :: !faults;
      words := !words + (Emio.Cost_ctx.bytes_read qctx / 8);
      pruned :=
        !pruned
        + (match List.assoc_opt "last_pruned" (Index.counters inst) with
          | Some p -> p
          | None -> 0))
    qs;
  let elapsed = Unix.gettimeofday () -. t0 in
  remove_tree dir;
  let nq = max 1 (Array.length qs) in
  {
    r_n = n;
    r_shards = k;
    r_build_s = build_s;
    r_build_ios = Emio.Cost_ctx.total bctx;
    r_space_blocks = space_blocks;
    r_snapshot_bytes = snapshot_bytes;
    r_load_s = load_s;
    r_avg_faults =
      float_of_int (List.fold_left ( + ) 0 !faults) /. float_of_int nq;
    r_p95_faults = Query_engine.percentile 0.95 !faults;
    r_words_per_query = float_of_int !words /. float_of_int nq;
    r_avg_t = !total_t / nq;
    r_us_per_query = 1e6 *. elapsed /. float_of_int nq;
    r_avg_pruned = float_of_int !pruned /. float_of_int nq;
  }

let json_of rows ~structure ~partition ~queries ~fraction ~cache_pages =
  let row r =
    Printf.sprintf
      "{\"n\": %d, \"shards\": %d, \"build_s\": %.3f, \"build_ios\": %d, \
       \"space_blocks\": %d, \"snapshot_bytes\": %d, \"load_s\": %.3f, \
       \"avg_faults\": %.1f, \"p95_faults\": %d, \"words_per_query\": %.1f, \
       \"avg_t\": %d, \"us_per_query\": %.1f, \"avg_pruned\": %.2f}"
      r.r_n r.r_shards r.r_build_s r.r_build_ios r.r_space_blocks
      r.r_snapshot_bytes r.r_load_s r.r_avg_faults r.r_p95_faults
      r.r_words_per_query r.r_avg_t r.r_us_per_query r.r_avg_pruned
  in
  String.concat ""
    [
      "{\n";
      Printf.sprintf "  \"structure\": \"%s\",\n" structure;
      Printf.sprintf "  \"partition\": \"%s\",\n"
        (Shard.partition_name partition);
      Printf.sprintf "  \"queries\": %d,\n" queries;
      Printf.sprintf "  \"fraction\": %g,\n" fraction;
      Printf.sprintf "  \"cache_pages\": %d,\n" cache_pages;
      "  \"rows\": [\n    ";
      String.concat ",\n    " (List.map row rows);
      "\n  ]\n}\n";
    ]

let run () =
  Util.section "SHARD"
    "out-of-core scale sweep: sharded builds, file backend, cold pool";
  let name = structure_name () in
  let (module M : Index.S) =
    match Registry.find name with
    | Some m -> m
    | None -> failwith (Printf.sprintf "unknown structure %S" name)
  in
  if M.snapshot = None then
    failwith (Printf.sprintf "structure %S does not snapshot" name);
  let ns = env_ints "LCSEARCH_SHARD_NS" [ 100_000; 1_000_000; 10_000_000 ] in
  let ks = env_ints "LCSEARCH_SHARD_KS" [ 1; 4; 16 ] in
  let partition = partition () in
  let queries = env_int "LCSEARCH_SHARD_QUERIES" 16 in
  let fraction = env_float "LCSEARCH_SHARD_FRACTION" 0.01 in
  let cache_pages = env_int "LCSEARCH_SHARD_CACHE" 512 in
  let build_domains =
    env_int "LCSEARCH_SHARD_DOMAINS" (Par.default_domains ())
  in
  let dim = List.hd M.dims in
  Printf.printf
    "  %s d=%d, %s partition, %d queries at %.3f selectivity, %d pool \
     pages, %d build domains\n"
    M.name dim
    (Shard.partition_name partition)
    queries fraction cache_pages build_domains;
  Printf.printf "  %10s %7s %9s %10s %11s %10s %10s %12s %10s %8s\n" "N"
    "shards" "build s" "build IO" "space blk" "snap MiB" "avg fault"
    "words/query" "us/query" "pruned";
  let rows = ref [] in
  List.iter
    (fun n ->
      let rng = Workload.rng (9173 + n) in
      let ds =
        Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n
          (module M : Index.S)
      in
      let qs =
        Array.of_list (Workloads.queries rng ds ~fraction ~count:queries)
      in
      List.iter
        (fun k ->
          let r =
            measure_cell
              (module M : Index.S)
              ~partition ~build_domains ~cache_pages ~qs ds ~n ~k
          in
          rows := r :: !rows;
          Printf.printf
            "  %10d %7d %9.2f %10d %11d %10.1f %10.1f %12.1f %10.1f %8.2f\n%!"
            r.r_n r.r_shards r.r_build_s r.r_build_ios r.r_space_blocks
            (float_of_int r.r_snapshot_bytes /. 1048576.)
            r.r_avg_faults r.r_words_per_query r.r_us_per_query r.r_avg_pruned)
        ks)
    ns;
  let rows = List.rev !rows in
  let path = json_path () in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (json_of rows ~structure:M.name ~partition ~queries ~fraction
           ~cache_pages));
  Printf.printf "\nwrote %d rows to %s\n" (List.length rows) path
