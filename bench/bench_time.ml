(* Wall-clock microbenchmarks (bechamel): one Test.make per Table 1
   row, timing a representative query against a prebuilt structure.
   The I/O experiments above are the primary reproduction; these show
   CPU-side costs are sane. *)

open Bechamel
open Toolkit

let block_size = 64

let make_tests () =
  let rng = Workload.rng 7001 in
  let stats = Emio.Io_stats.create () in
  (* row 1: §3 *)
  let pts2 = Workload.uniform2 rng ~n:8192 ~range:100. in
  let h2 = Core.Halfspace2d.build ~stats ~block_size pts2 in
  let s1, c1 = Workload.halfplane_with_selectivity rng pts2 ~fraction:0.01 in
  (* row 2: §4 *)
  let pts3 = Workload.uniform3 rng ~n:4096 ~range:50. in
  let h3 =
    Core.Halfspace3d.build ~stats ~block_size ~clip:(-10., -10., 10., 10.)
      pts3
  in
  let qa, qb, qc = Workload.halfspace3_with_selectivity rng pts3 ~fraction:0.01 in
  let qa = max (-9.9) (min 9.9 qa) and qb = max (-9.9) (min 9.9 qb) in
  (* row 3/6: shallow tree *)
  let ptsd = Workload.uniform_d rng ~n:8192 ~dim:3 ~range:50. in
  let sh = Core.Shallow_tree.build ~stats ~block_size ~dim:3 ptsd in
  let sa0, sa = Workload.halfspace_d_with_selectivity rng ptsd ~fraction:0.01 in
  (* row 4: tradeoff *)
  let tr =
    Core.Tradeoff3d.build ~stats ~block_size ~a:1.5 ~clip:(-10., -10., 10., 10.)
      pts3
  in
  (* rows 5/7: partition tree *)
  let pt = Core.Partition_tree.build ~stats ~block_size ~dim:3 ptsd in
  [
    Test.make ~name:"row1 halfspace2d"
      (Staged.stage (fun () ->
           ignore (Core.Halfspace2d.query_count h2 ~slope:s1 ~icept:c1)));
    Test.make ~name:"row2 halfspace3d"
      (Staged.stage (fun () ->
           ignore (Core.Halfspace3d.query_count h3 ~a:qa ~b:qb ~c:qc)));
    Test.make ~name:"row3 shallow_tree"
      (Staged.stage (fun () ->
           ignore (Core.Shallow_tree.query_halfspace sh ~a0:sa0 ~a:sa)));
    Test.make ~name:"row4 tradeoff3d"
      (Staged.stage (fun () ->
           ignore (Core.Tradeoff3d.query_count tr ~a:qa ~b:qb ~c:qc)));
    Test.make ~name:"row5/7 partition_tree"
      (Staged.stage (fun () ->
           ignore (Core.Partition_tree.query_halfspace pt ~a0:sa0 ~a:sa)));
  ]

let run () =
  Util.section "TIME" "Wall-clock per query (bechamel, one test per row)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"table1" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f ns/query\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* Persistence experiment: the same §3 structure queried in memory
   (simulated model I/Os) and reopened from a snapshot file (real page
   faults through the buffer pool).  The result counts must agree; the
   wall-clock and fault numbers show what the file backend costs at
   different pool sizes and policies. *)
let run_persistence () =
  Util.section "PERSIST" "file-backed snapshots: wall-clock and page faults";
  let n = 32768 and queries = 200 in
  let rng = Workload.rng 9001 in
  let stats = Emio.Io_stats.create () in
  let pts = Workload.uniform2 rng ~n ~range:100. in
  let h2 = Core.Halfspace2d.build ~stats ~block_size pts in
  let qs =
    Array.init queries (fun _ ->
        Workload.halfplane_with_selectivity rng pts ~fraction:0.01)
  in
  let time_queries run =
    let t0 = Unix.gettimeofday () in
    let total = ref 0 in
    Array.iter (fun (slope, icept) -> total := !total + run ~slope ~icept) qs;
    (1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int queries, !total)
  in
  Emio.Io_stats.reset stats;
  let mem_us, mem_t =
    time_queries (fun ~slope ~icept ->
        Core.Halfspace2d.query_count h2 ~slope ~icept)
  in
  Printf.printf
    "in-memory simulator   %8.1f us/query  %6d model I/Os  (%d queries, avg t=%d)\n"
    mem_us (Emio.Io_stats.reads stats) queries (mem_t / queries);
  let path = Filename.temp_file "lcsearch_bench" ".snapshot" in
  Core.Halfspace2d.save_snapshot h2 ~path ();
  List.iter
    (fun (label, policy, cache_pages) ->
      let fstats = Emio.Io_stats.create () in
      match Core.Halfspace2d.of_snapshot ~stats:fstats ~policy ~cache_pages path with
      | Error e ->
          Printf.printf "%-20s load failed: %s\n" label
            (Diskstore.Snapshot.error_to_string e)
      | Ok (t, _) ->
          Emio.Io_stats.reset fstats;
          let us, tt =
            time_queries (fun ~slope ~icept ->
                Core.Halfspace2d.query_count t ~slope ~icept)
          in
          Printf.printf
            "%-20s %8.1f us/query  %6d page faults  %6d hits  %5d evictions  %6.0f KiB read%s\n"
            label us
            (Emio.Io_stats.reads fstats)
            (Emio.Io_stats.cache_hits fstats)
            (Emio.Io_stats.evictions fstats)
            (float_of_int (Emio.Io_stats.bytes_read fstats) /. 1024.)
            (if tt = mem_t then "" else "  RESULT MISMATCH"))
    [
      ("file, lru, 256p", Diskstore.Buffer_pool.Lru, 256);
      ("file, lru, 16p", Diskstore.Buffer_pool.Lru, 16);
      ("file, clock, 16p", Diskstore.Buffer_pool.Clock, 16);
      ("file, no pool", Diskstore.Buffer_pool.Lru, 0);
    ];
  Sys.remove path
