(* Wall-clock microbenchmarks (bechamel): one Test.make per registered
   structure, timing a representative query against a prebuilt
   instance.  The I/O experiments are the primary reproduction; these
   show CPU-side costs are sane. *)

open Bechamel
open Toolkit
module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads

let bench_n = 8192

(* One prebuilt instance + query per registered structure, at the
   smallest dimension it supports. *)
let make_tests () =
  List.map
    (fun (module M : Index.S) ->
      let dim = List.hd M.dims in
      let rng = Workload.rng 7001 in
      let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:bench_n
          (module M : Index.S)
      in
      let q = Workloads.query rng ds ~fraction:0.01 in
      let stats = Emio.Io_stats.create () in
      let inst =
        Index.build (module M : Index.S) ~params:Index.default_params ~stats ds
      in
      Test.make
        ~name:(Printf.sprintf "%s d=%d" M.name dim)
        (Staged.stage (fun () -> ignore (Index.query_count inst q))))
    (Registry.all ())

let run () =
  Util.section "TIME" "Wall-clock per query (bechamel, one test per structure)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"registry" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f ns/query\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* Persistence experiment, generically over every snapshot-capable
   registered structure: the same instance queried in memory (simulated
   model I/Os) and reopened from a snapshot file (real page faults
   through the buffer pool).  The result counts must agree; wall-clock
   and fault numbers show what the file backend costs at different pool
   sizes and policies. *)
let run_persistence () =
  Util.section "PERSIST" "file-backed snapshots: wall-clock and page faults";
  let n = 32768 and queries = 200 in
  List.iter
    (fun (module M : Index.S) ->
      match M.snapshot with
      | None -> ()
      | Some ops ->
          let dim = List.hd M.dims in
          let rng = Workload.rng 9001 in
          let ds =
            Lcsearch_index.Workloads.dataset rng
              ~kind:Lcsearch_index.Workloads.Uniform ~dim ~n
              (module M : Index.S)
          in
          let qs =
            Array.of_list
              (Lcsearch_index.Workloads.queries rng ds ~fraction:0.01
                 ~count:queries)
          in
          let stats = Emio.Io_stats.create () in
          let t = M.build ~params:Index.default_params ~stats ds in
          let time_queries t =
            let t0 = Unix.gettimeofday () in
            let total = ref 0 in
            Array.iter (fun q -> total := !total + M.query_count t q) qs;
            ( 1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int queries,
              !total )
          in
          Printf.printf "\n%s (N=%d, %d queries):\n" M.name n queries;
          Emio.Io_stats.reset stats;
          let mem_us, mem_t = time_queries t in
          Printf.printf
            "  in-memory simulator   %8.1f us/query  %6d model I/Os  (avg \
             t=%d)\n"
            mem_us (Emio.Io_stats.reads stats) (mem_t / queries);
          let path = Filename.temp_file "lcsearch_bench" ".snapshot" in
          ops.Index.save t ~path ~meta:"" ~page_size:None;
          List.iter
            (fun (label, policy, cache_pages) ->
              let fstats = Emio.Io_stats.create () in
              match ops.Index.load ~stats:fstats ~policy ~cache_pages path with
              | Error e ->
                  Printf.printf "  %-20s load failed: %s\n" label
                    (Diskstore.Snapshot.error_to_string e)
              | Ok (t, _) ->
                  Emio.Io_stats.reset fstats;
                  let us, tt = time_queries t in
                  Printf.printf
                    "  %-20s %8.1f us/query  %6d page faults  %6d hits  %5d \
                     evictions  %6.0f KiB read%s\n"
                    label us
                    (Emio.Io_stats.reads fstats)
                    (Emio.Io_stats.cache_hits fstats)
                    (Emio.Io_stats.evictions fstats)
                    (float_of_int (Emio.Io_stats.bytes_read fstats) /. 1024.)
                    (if tt = mem_t then "" else "  RESULT MISMATCH"))
            [
              ("file, lru, 256p", Diskstore.Buffer_pool.Lru, 256);
              ("file, lru, 16p", Diskstore.Buffer_pool.Lru, 16);
              ("file, clock, 16p", Diskstore.Buffer_pool.Clock, 16);
              ("file, no pool", Diskstore.Buffer_pool.Lru, 0);
            ];
          Sys.remove path)
    (Registry.all ())
