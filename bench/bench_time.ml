(* Wall-clock microbenchmarks (bechamel): one Test.make per registered
   structure, timing a representative query against a prebuilt
   instance.  The I/O experiments are the primary reproduction; these
   show CPU-side costs are sane. *)

open Bechamel
open Toolkit
module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Workloads = Lcsearch_index.Workloads

let bench_n = 8192

(* One prebuilt instance + query per registered structure, at the
   smallest dimension it supports. *)
let make_tests () =
  List.map
    (fun (module M : Index.S) ->
      let dim = List.hd M.dims in
      let rng = Workload.rng 7001 in
      let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n:bench_n
          (module M : Index.S)
      in
      let q = Workloads.query rng ds ~fraction:0.01 in
      let stats = Emio.Io_stats.create () in
      let inst =
        Index.build (module M : Index.S) ~params:Index.default_params ~stats ds
      in
      Test.make
        ~name:(Printf.sprintf "%s d=%d" M.name dim)
        (Staged.stage (fun () -> ignore (Index.query_count inst q))))
    (Registry.all ())

let run () =
  Util.section "TIME" "Wall-clock per query (bechamel, one test per structure)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"registry" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "%-28s %12.1f ns/query\n" name est
      | _ -> Printf.printf "%-28s (no estimate)\n" name)
    results

(* Batch-throughput experiment: wall-clock queries/sec and GC words
   allocated per query, per registered structure, through the
   Query_engine batch path.  Emits machine-readable BENCH_TIME.json so
   the perf trajectory is tracked across PRs (EXPERIMENTS.md documents
   the schema).  Environment knobs:
     LCSEARCH_BENCH_N        points per structure   (default 8192)
     LCSEARCH_BENCH_QUERIES  batch size             (default 256)
     LCSEARCH_BENCH_DOMAINS  parallel fan-out       (default: the Par
                             pool's recommendation — cores minus one,
                             clamped; 1 on OCaml < 5.0)
     LCSEARCH_BENCH_OUT      output path            (default BENCH_TIME.json) *)

module Query_engine = Lcsearch_index.Query_engine

type batch_row = {
  br_name : string;
  br_dim : int;
  br_n : int;
  br_queries : int;
  br_domains : int;
  br_seq_qps : float;
  br_par_qps : float; (* 0. when the parallel path is unavailable *)
  br_words_per_query : float;
  br_results_total : int;
  br_par_matches : bool; (* parallel costs bit-equal to sequential *)
  br_capability : bool; (* Index.batch_plane_sorted *)
  br_hot_qps : float; (* per-query engine on the duplicate-heavy batch *)
  br_sorted_hot_qps : float; (* run_batch_sorted on the same batch *)
  br_sorted_matches : bool; (* sorted costs bit-equal to per-query *)
}

let costs_match (a : Query_engine.cost array) (b : Query_engine.cost array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Query_engine.cost) (y : Query_engine.cost) ->
         x.Query_engine.reads = y.Query_engine.reads
         && x.Query_engine.writes = y.Query_engine.writes
         && x.Query_engine.hits = y.Query_engine.hits
         && x.Query_engine.result = y.Query_engine.result)
       a b

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)

(* Run batches until [min_elapsed] seconds have been spent, returning
   queries/sec.  At least two batches run, so one-off warm-up noise
   (first-touch paging, lazy thunks) never dominates a row. *)
let time_batches ~min_elapsed ~run ~queries =
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < min_elapsed || !reps < 2 do
    ignore (run () : Query_engine.cost array);
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int (!reps * queries) /. !elapsed

let measure_batch ~n ~queries ~domains (module M : Index.S) =
  let dim = List.hd M.dims in
  let rng = Workload.rng 7001 in
  let ds = Workloads.dataset rng ~kind:Workloads.Uniform ~dim ~n (module M : Index.S) in
  let qs = Array.of_list (Workloads.queries rng ds ~fraction:0.01 ~count:queries) in
  let stats = Emio.Io_stats.create () in
  let inst =
    Index.build (module M : Index.S) ~params:Index.default_params ~stats ds
  in
  let run_seq () = Query_engine.run_batch_array inst qs in
  let seq_costs = run_seq () (* warm-up + reference costs *) in
  let results_total =
    Array.fold_left (fun acc c -> acc + c.Query_engine.result) 0 seq_costs
  in
  (* Allocation: sequential batches bracketed by Gc.allocated_bytes
     (words = bytes / word size).  With pool domains alive (spawned by
     an earlier structure's parallel phase), their not-yet-folded
     allocation counters can flush into the totals mid-bracket —
     observed as a one-time +229 376-word step landing in whichever
     bracket runs a minor collection first.  A full major up front
     folds what it can, and the min over three brackets discards any
     remaining one-time flush: it can only inflate a bracket, and once
     absorbed it cannot recur until the next parallel run. *)
  Gc.full_major ();
  let bracket () =
    let a0 = Gc.allocated_bytes () in
    let _ = run_seq () in
    Gc.allocated_bytes () -. a0
  in
  let words_batch = min (bracket ()) (min (bracket ()) (bracket ())) in
  let words_per_query =
    words_batch /. float_of_int (Sys.word_size / 8) /. float_of_int queries
  in
  let seq_qps = time_batches ~min_elapsed:0.2 ~run:run_seq ~queries in
  let par_qps, par_matches =
    if domains <= 1 then (0., true)
    else begin
      let run_par () = Query_engine.run_batch_array ~domains inst qs in
      let matches = costs_match (run_par ()) seq_costs in
      (time_batches ~min_elapsed:0.2 ~run:run_par ~queries, matches)
    end
  in
  (* Plane-sorted batch on a duplicate-heavy ("hot") batch — [queries]
     slots drawn from queries/8 distinct planes, the Zipf-lite shape of
     serve traffic.  Both engines run sequentially so the ratio
     isolates the cross-query amortization (one shared traversal per
     distinct plane) from domain fan-out. *)
  let capability = Index.batch_plane_sorted inst in
  let hot_qps, sorted_hot_qps, sorted_matches =
    if not capability then (0., 0., true)
    else begin
      let distinct = max 1 (queries / 8) in
      let qhot = Array.init queries (fun i -> qs.(i mod distinct)) in
      let run_sorted () = Query_engine.run_batch_sorted inst qhot in
      let run_plain () = Query_engine.run_batch_array inst qhot in
      let matches = costs_match (run_sorted ()) (run_plain ()) in
      ( time_batches ~min_elapsed:0.2 ~run:run_plain ~queries,
        time_batches ~min_elapsed:0.2 ~run:run_sorted ~queries,
        matches )
    end
  in
  {
    br_name = M.name;
    br_dim = dim;
    br_n = n;
    br_queries = queries;
    br_domains = domains;
    br_seq_qps = seq_qps;
    br_par_qps = par_qps;
    br_words_per_query = words_per_query;
    br_results_total = results_total;
    br_par_matches = par_matches;
    br_capability = capability;
    br_hot_qps = hot_qps;
    br_sorted_hot_qps = sorted_hot_qps;
    br_sorted_matches = sorted_matches;
  }

let json_of_batch_row r =
  String.concat ""
    [
      "{";
      Printf.sprintf "\"structure\": \"%s\", " r.br_name;
      Printf.sprintf "\"dim\": %d, " r.br_dim;
      Printf.sprintf "\"n_points\": %d, " r.br_n;
      Printf.sprintf "\"queries\": %d, " r.br_queries;
      Printf.sprintf "\"domains\": %d, " r.br_domains;
      Printf.sprintf "\"seq_queries_per_sec\": %.1f, " r.br_seq_qps;
      Printf.sprintf "\"par_queries_per_sec\": %.1f, " r.br_par_qps;
      Printf.sprintf "\"parallel_speedup\": %.3f, "
        (if r.br_seq_qps > 0. then r.br_par_qps /. r.br_seq_qps else 0.);
      Printf.sprintf "\"words_per_query\": %.1f, " r.br_words_per_query;
      Printf.sprintf "\"results_total\": %d, " r.br_results_total;
      Printf.sprintf "\"parallel_costs_match\": %b, " r.br_par_matches;
      Printf.sprintf "\"batch_plane_sorted\": %b, " r.br_capability;
      Printf.sprintf "\"hot_queries_per_sec\": %.1f, " r.br_hot_qps;
      Printf.sprintf "\"sorted_hot_queries_per_sec\": %.1f, "
        r.br_sorted_hot_qps;
      Printf.sprintf "\"sorted_hot_speedup\": %.3f, "
        (if r.br_hot_qps > 0. then r.br_sorted_hot_qps /. r.br_hot_qps else 0.);
      Printf.sprintf "\"sorted_costs_match\": %b" r.br_sorted_matches;
      "}";
    ]

let run_batch_throughput () =
  let n = env_int "LCSEARCH_BENCH_N" 8192 in
  let queries = env_int "LCSEARCH_BENCH_QUERIES" 256 in
  let domains =
    env_int "LCSEARCH_BENCH_DOMAINS" (Lcsearch_index.Par.default_domains ())
  in
  let out =
    match Sys.getenv_opt "LCSEARCH_BENCH_OUT" with
    | None | Some "" -> "BENCH_TIME.json"
    | Some p -> p
  in
  Util.section "BATCH"
    (Printf.sprintf
       "batch throughput: N=%d, %d queries/batch, %d domains -> %s" n queries
       domains out);
  let rows =
    List.map
      (fun (module M : Index.S) ->
        let r = measure_batch ~n ~queries ~domains (module M : Index.S) in
        Printf.printf
          "%-14s d=%d  seq %9.0f q/s  par %9.0f q/s  %8.0f words/query%s%s\n%!"
          r.br_name r.br_dim r.br_seq_qps r.br_par_qps r.br_words_per_query
          (if r.br_capability then
             Printf.sprintf "  sorted-hot %9.0f q/s" r.br_sorted_hot_qps
           else "")
          ((if r.br_par_matches then "" else "  PARALLEL COST MISMATCH")
          ^ if r.br_sorted_matches then "" else "  SORTED COST MISMATCH");
        r)
      (Registry.all ())
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        ("[\n  " ^ String.concat ",\n  " (List.map json_of_batch_row rows)
       ^ "\n]\n"))

(* Persistence experiment, generically over every snapshot-capable
   registered structure: the same instance queried in memory (simulated
   model I/Os) and reopened from a snapshot file (real page faults
   through the buffer pool).  The result counts must agree; wall-clock
   and fault numbers show what the file backend costs at different pool
   sizes and policies. *)
let run_persistence () =
  Util.section "PERSIST" "file-backed snapshots: wall-clock and page faults";
  let n = 32768 and queries = 200 in
  List.iter
    (fun (module M : Index.S) ->
      match M.snapshot with
      | None -> ()
      | Some ops ->
          let dim = List.hd M.dims in
          let rng = Workload.rng 9001 in
          let ds =
            Lcsearch_index.Workloads.dataset rng
              ~kind:Lcsearch_index.Workloads.Uniform ~dim ~n
              (module M : Index.S)
          in
          let qs =
            Array.of_list
              (Lcsearch_index.Workloads.queries rng ds ~fraction:0.01
                 ~count:queries)
          in
          let stats = Emio.Io_stats.create () in
          let t = M.build ~params:Index.default_params ~stats ds in
          let time_queries t =
            let t0 = Unix.gettimeofday () in
            let total = ref 0 in
            Array.iter (fun q -> total := !total + M.query_count t q) qs;
            ( 1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int queries,
              !total )
          in
          Printf.printf "\n%s (N=%d, %d queries):\n" M.name n queries;
          Emio.Io_stats.reset stats;
          let mem_us, mem_t = time_queries t in
          Printf.printf
            "  in-memory simulator   %8.1f us/query  %6d model I/Os  (avg \
             t=%d)\n"
            mem_us (Emio.Io_stats.reads stats) (mem_t / queries);
          let path = Filename.temp_file "lcsearch_bench" ".snapshot" in
          ops.Index.save t ~path ~meta:"" ~page_size:None;
          List.iter
            (fun (label, policy, cache_pages) ->
              let fstats = Emio.Io_stats.create () in
              match ops.Index.load ~stats:fstats ~policy ~cache_pages path with
              | Error e ->
                  Printf.printf "  %-20s load failed: %s\n" label
                    (Diskstore.Snapshot.error_to_string e)
              | Ok (t, _) ->
                  Emio.Io_stats.reset fstats;
                  let us, tt = time_queries t in
                  Printf.printf
                    "  %-20s %8.1f us/query  %6d page faults  %6d hits  %5d \
                     evictions  %6.0f KiB read%s\n"
                    label us
                    (Emio.Io_stats.reads fstats)
                    (Emio.Io_stats.cache_hits fstats)
                    (Emio.Io_stats.evictions fstats)
                    (float_of_int (Emio.Io_stats.bytes_read fstats) /. 1024.)
                    (if tt = mem_t then "" else "  RESULT MISMATCH"))
            [
              ("file, lru, 256p", Diskstore.Buffer_pool.Lru, 256);
              ("file, lru, 16p", Diskstore.Buffer_pool.Lru, 16);
              ("file, clock, 16p", Diskstore.Buffer_pool.Clock, 16);
              ("file, no pool", Diskstore.Buffer_pool.Lru, 0);
            ];
          Sys.remove path)
    (Registry.all ())
