(* Table 1, registry-generically: every registered structure swept over
   N at each dimension it supports, measured by the one shared
   Bench_kit protocol, printed as a table and written to
   BENCH_TABLE1.json (structure × N × {build I/Os, query I/Os
   p50/p95, space blocks}).

   Environment knobs (the CI smoke step uses both):
     LCSEARCH_TABLE1_NS   comma-separated N list overriding the plan
     LCSEARCH_TABLE1_OUT  output path (default BENCH_TABLE1.json)  *)

module Index = Lcsearch_index.Index
module Registry = Lcsearch_index.Registry
module Bench_kit = Lcsearch_index.Bench_kit

let json_path () =
  match Sys.getenv_opt "LCSEARCH_TABLE1_OUT" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_TABLE1.json"

let env_ns () =
  match Sys.getenv_opt "LCSEARCH_TABLE1_NS" with
  | None -> None
  | Some s -> (
      match
        List.filter_map int_of_string_opt (String.split_on_char ',' s)
      with
      | [] -> None
      | ns -> Some ns)

(* Default N sweep per structure: the expensive 3-d builds (§4-based)
   get a shorter ladder so the whole table stays in seconds. *)
let plan_ns (module M : Index.S) ~dim =
  match env_ns () with
  | Some ns -> ns
  | None -> (
      match M.name with
      | "h3" | "tradeoff" | "cert" -> [ 1024; 2048 ]
      | "scan" -> [ 4096 ]
      | _ when dim >= 4 -> [ 4096; 8192 ]
      | _ -> [ 4096; 8192; 16384 ])

let table1 () =
  Util.section "T1"
    "Table 1 (registry-generic) — every structure × N, shared protocol";
  let results = ref [] in
  List.iter
    (fun (module M : Index.S) ->
      List.iter
        (fun dim ->
          let series = ref [] in
          List.iter
            (fun n ->
              let r = Bench_kit.measure (module M : Index.S) ~dim ~n in
              results := r :: !results;
              series :=
                ( float_of_int (Util.blocks ~block_size:64 n),
                  float_of_int (Bench_kit.q_reads_p50 r) )
                :: !series;
              Format.printf "  %a@." Bench_kit.pp_row r)
            (plan_ns (module M) ~dim);
          if List.length !series >= 2 then
            Printf.printf
              "  %-14s d=%d empirical I/O exponent vs n: %.2f\n" M.name dim
              (Util.scaling_exponent !series))
        M.dims)
    (Registry.all ());
  let results = List.rev !results in
  let path = json_path () in
  Bench_kit.write_json ~path results;
  Printf.printf "\nwrote %d measurements to %s\n" (List.length results) path
