(* The paper's §7 open problems, exercised on a road-network scenario:

   1. (open problem 2) Which existing roads would a proposed new route
      cross?  — segment intersection searching, answered by the
      three-level partition tree (Core.Seg_intersect).
   2. (open problem 1 / §5 remark (iii)) Incident reports arrive and
      get resolved continuously; dispatch wants all active incidents
      inside a triangular coverage zone.  — the §5 partition tree
      dynamized through the generic LSM layer (Lcsearch_index.Lsm over
      ptree): the index answers the zone's bounding halfspace, the
      client refines by the remaining two edges.

   Run with:  dune exec examples/road_network.exe *)

open Geom

let () =
  let rng = Workload.rng 314 in
  let block_size = 32 in

  (* --- a synthetic road network: 20k short segments --------------- *)
  let n_roads = 20_000 in
  let roads =
    Array.init n_roads (fun _ ->
        let cx = Random.State.float rng 200. -. 100.
        and cy = Random.State.float rng 200. -. 100. in
        let len = 0.5 +. Random.State.float rng 3. in
        let ang = Random.State.float rng (2. *. Float.pi) in
        ( Point2.make cx cy,
          Point2.make (cx +. (len *. cos ang)) (cy +. (len *. sin ang)) ))
  in
  let stats = Emio.Io_stats.create () in
  let net = Core.Seg_intersect.build ~stats ~block_size roads in
  Printf.printf
    "road network: %d segments, %d blocks (multi-level partition tree)\n"
    n_roads
    (Core.Seg_intersect.space_blocks net);

  let proposals =
    [
      (Point2.make (-80.) (-80.), Point2.make 80. 80.);
      (Point2.make (-50.) 60., Point2.make 70. (-30.));
      (Point2.make 0. 0., Point2.make 5. 2.);
    ]
  in
  List.iter
    (fun (a, b) ->
      Emio.Io_stats.reset stats;
      let crossed = Core.Seg_intersect.query net a b in
      Printf.printf
        "route %s -> %s crosses %4d roads  (%5d I/Os; scan = %d blocks)\n"
        (Format.asprintf "%a" Point2.pp a)
        (Format.asprintf "%a" Point2.pp b)
        (List.length crossed)
        (Emio.Io_stats.reads stats)
        ((n_roads + block_size - 1) / block_size))
    proposals;

  (* --- live incidents: insert/delete + zone queries ----------------- *)
  (* The §5 partition tree dynamized through the generic LSM layer
     (remark (iii): the logarithmic method turns any decomposable
     static structure into a dynamic one for a log-factor overhead). *)
  let module Index = Lcsearch_index.Index in
  let (module L : Index.S) =
    Lcsearch_index.Lsm.make ~memtable_cap:64
      ~inner:(Lcsearch_index.Registry.find_exn "ptree")
      ()
  in
  let t =
    L.build
      ~params:{ Index.default_params with block_size }
      ~stats:(Emio.Io_stats.create ())
      (Index.Pts2 [||])
  in
  let incidents = Index.Instance ((module L), t) in
  let u = Option.get (Index.updater incidents) in
  (* the example keeps the live rows by handle so resolved incidents
     can be picked and zone hits mapped back to coordinates *)
  let rows = Hashtbl.create 512 in
  let open_incident () =
    let p =
      [|
        Random.State.float rng 200. -. 100.; Random.State.float rng 200. -. 100.;
      |]
    in
    let h = u.Index.u_insert p in
    Hashtbl.replace rows h p;
    h
  in
  let live = ref [] in
  for _ = 1 to 2000 do
    live := open_incident () :: !live;
    (* resolve a random older incident half the time *)
    if Random.State.bool rng then begin
      match !live with
      | h :: rest when List.length rest > 0 ->
          ignore (u.Index.u_delete h : bool);
          Hashtbl.remove rows h;
          live := rest
      | _ -> ()
    end
  done;
  let counter key =
    Option.value ~default:0 (List.assoc_opt key (Index.counters incidents))
  in
  Printf.printf
    "\nincident store: %d live after 2000 opens + resolutions; %d levels, %d merges\n"
    (u.Index.u_live ()) (counter "levels") (counter "merges");
  (* dispatch zone: triangle (-60,-60) (60,-60) (0,80).  The index
     surface answers halfspaces, so the zone's bounding edge b-c
     becomes the index query (y <= 80 - 7/3 x) and the client refines
     the candidates by the remaining two edges. *)
  let edge (px, py) (qx, qy) (ox, oy) =
    let w = [| qy -. py; px -. qx |] in
    let b = -.((w.(0) *. px) +. (w.(1) *. py)) in
    let v = (w.(0) *. ox) +. (w.(1) *. oy) +. b in
    if v <= 0. then { Partition.Cells.w; b }
    else { Partition.Cells.w = [| -.w.(0); -.w.(1) |]; b = -.b }
  in
  let a = (-60., -60.) and b = (60., -60.) and c = (0., 80.) in
  let refine = [ edge a b c; edge c a b ] in
  let ctx = Emio.Cost_ctx.create () in
  let candidates =
    Emio.Cost_ctx.with_ctx ctx (fun () ->
        let r = Emio.Reporter.create () in
        ignore
          (Index.query_into incidents
             { Index.a0 = 80.; a = [| -7. /. 3. |] }
             r
            : int);
        Emio.Reporter.to_list r)
  in
  let in_zone =
    List.filter
      (fun h ->
        let p = Hashtbl.find rows h in
        List.for_all (fun c -> Partition.Cells.satisfies c p) refine)
      candidates
  in
  Printf.printf
    "dispatch zone holds %d live incidents (%d candidates below edge b-c, %d I/Os)\n"
    (List.length in_zone) (List.length candidates)
    (Emio.Cost_ctx.reads ctx)
